"""§3.1: area & frequency overhead of the two timestamp patterns.

The paper's measurement campaign on the pointer-chasing kernel:

* un-profiled baseline reaches 233.3 MHz;
* adding the OpenCL free-running counters (persistent kernels + channels)
  lowers it to 227.8 MHz, with 1.3% logic overhead (incl. a trace buffer);
* adding the HDL counter costs less — 1.1% logic overhead — and keeps
  frequency within 3% of baseline; hence "the HDL approach is preferred".

Both overhead percentages are measured against device capacity (the way
vendor reports quote utilization deltas).

This module also runs the instrumented kernels functionally to check that
the two patterns report identical step latencies (same counter semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.commands import SamplingMode
from repro.core.ibuffer import IBuffer, IBufferConfig
from repro.core.logic_blocks import RawRecorderLogic
from repro.core.timestamp import HDLTimestampService, PersistentTimestampService
from repro.host.context import Context
from repro.host.program import Program
from repro.kernels.pointer_chase import PointerChaseKernel, build_chain
from repro.synthesis.report import SynthesisReport

PAPER_REFERENCE = {
    "base_mhz": 233.3,
    "opencl_mhz": 227.8,
    "hdl_max_drop_pct": 3.0,
    "opencl_logic_overhead_pct": 1.3,
    "hdl_logic_overhead_pct": 1.1,
}

#: Trace buffer attached in both instrumented variants ("including a trace
#: buffer", §3.1).
TRACE_DEPTH = 1024


@dataclass
class Sec31Variant:
    """One of the three synthesized designs."""

    label: str
    report: SynthesisReport
    step_stamps: List[int]

    @property
    def fmax_mhz(self) -> float:
        return self.report.fmax_mhz


@dataclass
class Sec31Result:
    base: Sec31Variant
    opencl: Sec31Variant
    hdl: Sec31Variant
    device_alms: int

    def freq_drop_pct(self, variant: Sec31Variant) -> float:
        return 100.0 * (self.base.fmax_mhz - variant.fmax_mhz) / self.base.fmax_mhz

    def logic_overhead_pct(self, variant: Sec31Variant) -> float:
        """Overhead as % of device logic (vendor-report convention)."""
        delta = variant.report.total.alms - self.base.report.total.alms
        return 100.0 * delta / self.device_alms

    def step_latencies(self, variant: Sec31Variant) -> List[int]:
        stamps = variant.step_stamps
        return [b - a for a, b in zip(stamps, stamps[1:])]

    def render(self) -> str:
        lines = ["=== Section 3.1: timestamp pattern overhead (pointer chase) ===",
                 f"{'variant':22s} {'fmax MHz':>9s} {'dFreq%':>8s} {'dLogic% of device':>18s}"]
        for variant in (self.base, self.opencl, self.hdl):
            lines.append(
                f"{variant.label:22s} {variant.fmax_mhz:9.1f} "
                f"{self.freq_drop_pct(variant):8.2f} "
                f"{self.logic_overhead_pct(variant):18.2f}")
        lines.append(
            f"paper: base {PAPER_REFERENCE['base_mhz']} MHz, OpenCL counter "
            f"{PAPER_REFERENCE['opencl_mhz']} MHz, HDL drop < "
            f"{PAPER_REFERENCE['hdl_max_drop_pct']}%; logic overhead "
            f"{PAPER_REFERENCE['opencl_logic_overhead_pct']}% vs "
            f"{PAPER_REFERENCE['hdl_logic_overhead_pct']}%")
        return "\n".join(lines)


def _run_variant(mode: Optional[str], chain_size: int, steps: int) -> Sec31Variant:
    context = Context()
    fabric = context.fabric
    persistent = hdl = None
    kernels = []
    if mode == "persistent":
        # Listing 2 uses one counter kernel per read site; the pointer-chase
        # experiment reads at one site per step plus a second site, matching
        # the "free-running counters" plural of §3.1.
        persistent = PersistentTimestampService(fabric, sites=2, name="pc_time")
        kernels.extend(persistent.kernels)
    elif mode == "hdl":
        hdl = HDLTimestampService(fabric, context.hdl_library, name="pc_get_time")
    kernel = PointerChaseKernel(timestamps=mode, persistent=persistent, hdl=hdl)
    kernels.insert(0, kernel)
    if mode is not None:
        # "... 1.3% logic overhead including a trace buffer": both variants
        # carry one raw-recording ibuffer.
        trace = IBuffer(fabric, "pc_trace",
                        logic_factory=lambda cu: RawRecorderLogic(),
                        config=IBufferConfig(count=1, depth=TRACE_DEPTH,
                                             mode=SamplingMode.CYCLIC))
        kernels.append(trace)

    ptr = fabric.memory.allocate("ptr", chain_size)
    ptr.fill(build_chain(chain_size))
    fabric.memory.allocate("out", 1)
    fabric.run_kernel(kernel, {"start": 0, "steps": steps})

    program = Program(context, kernels, name=f"pointer_chase_{mode or 'base'}")
    return Sec31Variant(label=mode or "base", report=program.synthesis_report(),
                        step_stamps=list(kernel.step_stamps))


def run(chain_size: int = 64, steps: int = 32) -> Sec31Result:
    """Run all three §3.1 variants (synthesis + functional)."""
    from repro.synthesis.resources import STRATIX_V

    return Sec31Result(
        base=_run_variant(None, chain_size, steps),
        opencl=_run_variant("persistent", chain_size, steps),
        hdl=_run_variant("hdl", chain_size, steps),
        device_alms=STRATIX_V.alms,
    )
