"""Figure 2: execution/scheduling order of single-task vs NDRange matvec.

Runs both Listing 6 and Listing 7 with the paper's parameters (N=50 rows,
num=100 columns, probing i<10), instrumented with the sequence-number and
persistent-timestamp patterns, and reconstructs the dynamic issue order
from the info buffers.

Expected shapes (the paper's findings):

* single-task executes in program order — all inner iterations before the
  next outer iteration (Figure 2(a));
* NDRange interleaves work-items — every work-item issues inner iteration
  i before any issues i+1 (Figure 2(b));
* the access patterns of ``x`` differ (unit-stride vs ``num``-stride), and
  so do the execution times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.order import (
    OrderRecord,
    access_pattern,
    classify_order,
    order_records,
    render_figure2,
    timestamps_monotonic,
)
from repro.core.sequence import SequenceService
from repro.core.timestamp import PersistentTimestampService
from repro.kernels.matvec import (
    MatVecNDRange,
    MatVecSingleTask,
    allocate_matvec_buffers,
    expected_matvec,
)
from repro.pipeline.fabric import Fabric

#: The paper's workload: N=50 work-items/rows, num=100 inner iterations.
PAPER_N = 50
PAPER_NUM = 100
PAPER_PROBE_I = 10


@dataclass
class Fig2KernelResult:
    """One sub-figure: the trace and derived properties for one kernel."""

    label: str
    records: List[OrderRecord]
    classification: str
    access_order: List[int]
    total_cycles: int
    result_correct: bool

    def render(self, start_seq: Optional[int] = None, count: int = 4) -> str:
        if start_seq is None:
            # The paper shows slots 51-54; fall back to a mid-trace window
            # when the run is smaller than that.
            start_seq = 51 if len(self.records) >= 51 + count else max(
                1, len(self.records) // 2)
        header = (f"[{self.label}] order={self.classification} "
                  f"cycles={self.total_cycles} "
                  f"x-access={self.access_order[:5]}...")
        return header + "\n" + render_figure2(self.records, start_seq, count)


@dataclass
class Fig2Result:
    """Both sub-figures plus the cross-kernel comparison."""

    single_task: Fig2KernelResult
    ndrange: Fig2KernelResult

    @property
    def orders_differ(self) -> bool:
        return self.single_task.classification != self.ndrange.classification

    @property
    def runtimes_differ(self) -> bool:
        return self.single_task.total_cycles != self.ndrange.total_cycles

    def render(self) -> str:
        return "\n\n".join([
            "=== Figure 2: execution/scheduling order ===",
            self.single_task.render(),
            self.ndrange.render(),
            f"orders differ: {self.orders_differ}; "
            f"runtimes differ: {self.runtimes_differ} "
            f"({self.single_task.total_cycles} vs {self.ndrange.total_cycles} cycles)",
        ])


def _run_one(kind: str, n: int, num: int, probe_i: int,
             trace=None, executor: str = "fast") -> Fig2KernelResult:
    import numpy as np

    fabric = Fabric(trace=trace)
    sequence = SequenceService(fabric)
    timestamps = PersistentTimestampService(fabric, sites=1)
    buffers = allocate_matvec_buffers(fabric, n, num, probe_i=probe_i)
    if kind == "single-task":
        kernel = MatVecSingleTask(sequence, timestamps, probe_i=probe_i)
    else:
        kernel = MatVecNDRange(sequence, timestamps, probe_i=probe_i)
    engine = fabric.run_kernel(kernel, {"N": n, "num": num},
                               executor=executor)
    correct = bool(np.array_equal(buffers["z"].snapshot(),
                                  expected_matvec(n, num)))
    records = order_records(buffers["info1"].snapshot(),
                            buffers["info2"].snapshot(),
                            buffers["info3"].snapshot(),
                            count=n * min(probe_i, num))
    assert timestamps_monotonic(records), "sequence/time order disagreement"
    if trace is not None:
        from repro.trace.capture import publish_order_records, publish_run_span
        publish_order_records(trace, records, kernel=kind,
                              site=f"{kind}:probe")
        publish_run_span(trace, kind, 0, engine.stats.total_cycles)
    return Fig2KernelResult(
        label=kind,
        records=records,
        classification=classify_order(records),
        access_order=access_pattern(records, num),
        total_cycles=engine.stats.total_cycles,
        result_correct=correct,
    )


def run(n: int = PAPER_N, num: int = PAPER_NUM,
        probe_i: int = PAPER_PROBE_I, trace=None,
        executor: str = "fast") -> Fig2Result:
    """Run the full Figure 2 experiment (both kernels, fresh fabrics).

    ``trace`` may be a :class:`repro.trace.hub.TraceHub`; both kernels
    then publish their decoded ``order.record`` probes and a ``run.span``
    each into it. ``executor`` selects the pipeline-engine tier
    (fast/reference/batch) for both launches.
    """
    return Fig2Result(
        single_task=_run_one("single-task", n, num, probe_i, trace=trace,
                             executor=executor),
        ndrange=_run_one("ndrange", n, num, probe_i, trace=trace,
                         executor=executor),
    )
