"""§5.2 use case: smart watchpoints with bound & invariance checking.

Reproduces the Listing 11 scenario on a faulty kernel:

* a watch is installed on one element of a data buffer; every hit records
  (timestamp, address, value) — the gdb ``watch`` history;
* the kernel is given an off-by-N index bug, so some monitored reads fall
  outside the legal buffer extent — address bound checking flags each one;
* a second monitor unit watches the output location with invariance
  checking enabled; the faulty kernel overwrites it with a different
  value, which is flagged as an invariance violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.violations import WatchEvent, decode_events, render_watch_report
from repro.core.watchpoint import SmartWatchpoint
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import SingleTaskKernel


class FaultyStencilKernel(SingleTaskKernel):
    """Reads ``src[i + offset]`` for i in [0, n) — out of bounds when
    ``offset`` pushes past the end; writes a result that should stay
    invariant but doesn't.

    Every memory operation that may touch watched state is explicitly
    monitored, as §5.2 requires ("a user needs to explicitly insert a
    monitor_address function for every possible memory operation that may
    access the location under watch").
    """

    def __init__(self, watchpoint: SmartWatchpoint,
                 name: str = "faulty_stencil") -> None:
        super().__init__(name=name)
        self.watchpoint = watchpoint

    def iteration_space(self, args: Dict) -> range:
        return range(args["n"])

    def body(self, ctx):
        i = ctx.iteration
        n = ctx.arg("n")
        offset = ctx.arg("offset")
        memory = ctx._instance.fabric.memory
        src = memory.buffer("src")
        dst = memory.buffer("dst")

        if i == 0:
            # Watch the first source element and the first output element.
            self.watchpoint.add_watch(ctx, 0, src.address_of(0))
            self.watchpoint.add_watch(ctx, 1, dst.address_of(0))

        index = i + offset            # the bug: offset shifts reads off the end
        address = src.base_address + index * src.itemsize
        value = 0
        if 0 <= index < src.size:
            value = yield ctx.load("src", index)
        # Monitor the read address for bound checking (Listing 11).
        self.watchpoint.monitor_address(ctx, 0, address, value)

        # The "invariant" output: should always hold the same sentinel, but
        # the faulty kernel writes the loop counter for odd iterations.
        result = 7 if i % 2 == 0 else i
        yield ctx.store("dst", 0, result)
        self.watchpoint.monitor_address(ctx, 1, dst.address_of(0), result)


@dataclass
class Sec52Result:
    watch_hits: List[WatchEvent]
    bound_violations: List[WatchEvent]
    invariance_violations: List[WatchEvent]
    expected_bound_violations: int
    expected_invariance_violations: int

    @property
    def bound_check_correct(self) -> bool:
        return len(self.bound_violations) == self.expected_bound_violations

    @property
    def invariance_check_correct(self) -> bool:
        return len(self.invariance_violations) == self.expected_invariance_violations

    def render(self) -> str:
        return "\n".join([
            "=== Section 5.2: smart watchpoints ===",
            f"watch hits: {len(self.watch_hits)}",
            f"bound violations: {len(self.bound_violations)} "
            f"(expected {self.expected_bound_violations}) -> "
            f"{'OK' if self.bound_check_correct else 'MISMATCH'}",
            f"invariance violations: {len(self.invariance_violations)} "
            f"(expected {self.expected_invariance_violations}) -> "
            f"{'OK' if self.invariance_check_correct else 'MISMATCH'}",
            render_watch_report(self.bound_violations + self.invariance_violations,
                                limit=10),
        ])


def run(n: int = 24, offset: int = 4, src_size: int = 24,
        depth: int = 256, trace=None, executor: str = "fast") -> Sec52Result:
    """Run the faulty kernel under full watchpoint instrumentation.

    ``trace`` may be a :class:`repro.trace.hub.TraceHub`; the watchpoint
    then publishes raw ibuffer drains and typed ``watch.event`` records,
    plus one ``run.span`` for the kernel launch. ``executor`` selects the
    pipeline-engine tier (fast/reference/batch).
    """
    fabric = Fabric(trace=trace)
    watchpoint = SmartWatchpoint(fabric, units=2, depth=depth,
                                 max_watches=2, invariance=True)
    src = fabric.memory.allocate("src", src_size)
    src.fill(list(range(100, 100 + src_size)))
    fabric.memory.allocate("dst", 4)
    # Bound-check monitored reads against the src buffer's real extent.
    watchpoint.set_bounds_to_buffer("src", unit=0)

    kernel = FaultyStencilKernel(watchpoint)
    engine = fabric.run_kernel(kernel, {"n": n, "offset": offset},
                               executor=executor)
    if trace is not None:
        from repro.trace.capture import publish_run_span
        publish_run_span(trace, kernel.name, 0, engine.stats.total_cycles)

    unit0 = decode_events(watchpoint.read_unit(0))
    unit1 = decode_events(watchpoint.read_unit(1))
    from repro.core.logic_blocks import (
        KIND_BOUND_VIOLATION,
        KIND_INVARIANCE_VIOLATION,
        KIND_MATCH,
    )
    hits = [e for e in unit0 + unit1 if e.kind == KIND_MATCH]
    bounds = [e for e in unit0 if e.kind == KIND_BOUND_VIOLATION]
    invariance = [e for e in unit1 if e.kind == KIND_INVARIANCE_VIOLATION]

    # Expected counts: reads at index i+offset for i in [0, n) go out of
    # bounds whenever i + offset >= src_size.
    expected_bounds = sum(1 for i in range(n) if i + offset >= src_size)
    # dst[0] sequence: 7, 1, 7, 3, 7, 5 ... every write after the first that
    # differs from its predecessor is one invariance violation.
    writes = [7 if i % 2 == 0 else i for i in range(n)]
    expected_invariance = sum(1 for a, b in zip(writes, writes[1:]) if a != b)

    return Sec52Result(
        watch_hits=hits,
        bound_violations=bounds,
        invariance_violations=invariance,
        expected_bound_violations=expected_bounds,
        expected_invariance_violations=expected_invariance,
    )
