"""One module per paper experiment; shared by benchmarks, CLI, and docs.

* :mod:`repro.experiments.fig2`        — Figure 2(a)/(b) execution order;
* :mod:`repro.experiments.table1`      — Table 1 area/frequency;
* :mod:`repro.experiments.sec31`       — §3.1 timestamp-pattern overhead;
* :mod:`repro.experiments.sec51`       — §5.1 stall-monitor use case;
* :mod:`repro.experiments.sec52`       — §5.2 smart-watchpoint use case;
* :mod:`repro.experiments.limitations` — §3.1 limitations ablation;
* :mod:`repro.experiments.scalability` — §4 ibuffer cost surface (N x DEPTH).
"""

from repro.experiments import (fig2, limitations, scalability, sec31,
                               sec51, sec52, table1)

__all__ = ["fig2", "limitations", "scalability", "sec31", "sec51",
           "sec52", "table1"]
