"""Property-based tests on pipeline execution invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.memory.global_memory import GlobalMemoryConfig
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import PipelineConfig, SingleTaskKernel


class _IndexedLoads(SingleTaskKernel):
    """Loads a caller-chosen index per iteration, records retire times."""

    def __init__(self, indices, **kw):
        super().__init__(**kw)
        self.indices = indices
        self.retired = []   # (iteration, cycle, value)

    def iteration_space(self, args):
        return range(len(self.indices))

    def body(self, ctx):
        value = yield ctx.load("data", self.indices[ctx.iteration])
        self.retired.append((ctx.iteration, ctx.now, value))


_index_lists = st.lists(st.integers(min_value=0, max_value=255),
                        min_size=1, max_size=24)
_configs = st.builds(
    GlobalMemoryConfig,
    pipe_latency=st.integers(1, 60),
    banks=st.sampled_from([1, 2, 4, 8]),
    bank_busy_cycles=st.integers(1, 8),
    row_bytes=st.sampled_from([64, 256, 1024]),
    row_hit_cycles=st.integers(1, 8),
    row_miss_cycles=st.integers(8, 40),
)


class TestInOrderRetirement:
    @given(indices=_index_lists, config=_configs)
    @settings(max_examples=40, deadline=None)
    def test_per_site_retire_order_is_issue_order(self, indices, config):
        """Regardless of address pattern or memory timing, one static load
        site retires its accesses in issue order."""
        fabric = Fabric(memory_config=config)
        fabric.memory.allocate("data", 256).fill(range(256))
        kernel = _IndexedLoads(indices, name="probe")
        fabric.run_kernel(kernel, {})
        iterations = [iteration for iteration, _, _ in kernel.retired]
        cycles = [cycle for _, cycle, _ in kernel.retired]
        assert iterations == sorted(iterations)
        assert cycles == sorted(cycles)

    @given(indices=_index_lists, config=_configs)
    @settings(max_examples=40, deadline=None)
    def test_loaded_values_are_correct(self, indices, config):
        fabric = Fabric(memory_config=config)
        fabric.memory.allocate("data", 256).fill(range(256))
        kernel = _IndexedLoads(indices, name="probe")
        fabric.run_kernel(kernel, {})
        assert [value for _, _, value in kernel.retired] == indices

    @given(indices=_index_lists,
           inflight=st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_inflight_cap_never_exceeded(self, indices, inflight):
        fabric = Fabric()
        fabric.memory.allocate("data", 256).fill(range(256))
        kernel = _IndexedLoads(
            indices, name="probe",
            pipeline=PipelineConfig(max_inflight=inflight))
        engine = fabric.run_kernel(kernel, {})
        assert engine.stats.iterations_retired == len(indices)
        # Ground truth via the engine's own accounting at completion.
        assert engine._inflight == 0

    @given(indices=_index_lists)
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, indices):
        """Identical configurations produce identical cycle traces."""
        def run():
            fabric = Fabric()
            fabric.memory.allocate("data", 256).fill(range(256))
            kernel = _IndexedLoads(indices, name="probe")
            fabric.run_kernel(kernel, {})
            return kernel.retired
        assert run() == run()
