"""Unit/integration tests for the pipeline engine and kernel model."""

from __future__ import annotations

import pytest

from repro.errors import KernelBuildError, KernelError, ProcessError
from repro.pipeline.engine import AutorunEngine, PipelineEngine
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import (
    AutorunKernel,
    Kernel,
    NDRangeKernel,
    PipelineConfig,
    ResourceProfile,
    SingleTaskKernel,
)


class CopyKernel(SingleTaskKernel):
    """Copies src -> dst, one element per iteration."""

    def iteration_space(self, args):
        return range(args["n"])

    def body(self, ctx):
        value = yield ctx.load("src", ctx.iteration)
        yield ctx.store("dst", ctx.iteration, value + ctx.arg("bias"))


class TickKernel(AutorunKernel):
    """Counts cycles into a list (for autorun lifecycle tests)."""

    def __init__(self, **kw):
        super().__init__(name="tick", **kw)
        self.ticks = []

    def body(self, ctx):
        while True:
            self.ticks.append(ctx.now)
            yield ctx.cycle()


def _setup_copy(fabric, n=8, bias=0):
    src = fabric.memory.allocate("src", n)
    src.fill(range(n))
    dst = fabric.memory.allocate("dst", n)
    return src, dst


class TestPipelineConfigValidation:
    def test_ii_must_be_positive(self):
        with pytest.raises(KernelBuildError):
            PipelineConfig(ii=0)

    def test_inflight_must_be_positive(self):
        with pytest.raises(KernelBuildError):
            PipelineConfig(max_inflight=0)

    def test_num_compute_units_validated(self):
        with pytest.raises(KernelBuildError):
            SingleTaskKernel(num_compute_units=0)


class TestSingleTaskExecution:
    def test_copy_kernel_correct(self, fabric):
        src, dst = _setup_copy(fabric)
        fabric.run_kernel(CopyKernel(name="copy"), {"n": 8, "bias": 5})
        assert list(dst.snapshot()) == [value + 5 for value in range(8)]

    def test_stats_track_iterations(self, fabric):
        _setup_copy(fabric)
        engine = fabric.run_kernel(CopyKernel(name="copy"), {"n": 8, "bias": 0})
        assert engine.stats.iterations_issued == 8
        assert engine.stats.iterations_retired == 8
        assert engine.stats.total_cycles > 0

    def test_empty_iteration_space_completes(self, fabric):
        _setup_copy(fabric)
        engine = fabric.run_kernel(CopyKernel(name="copy"), {"n": 0, "bias": 0})
        assert engine.stats.iterations_issued == 0
        assert engine.completion.triggered

    def test_pipelining_beats_serial_execution(self, fabric):
        """II=1 pipelining must overlap memory latencies across iterations."""
        _setup_copy(fabric, n=8)
        pipelined = fabric.run_kernel(CopyKernel(name="copy"), {"n": 8, "bias": 0})
        serial_fabric = Fabric()
        _setup_copy(serial_fabric, n=8)
        serial = serial_fabric.run_kernel(
            CopyKernel(name="copy", pipeline=PipelineConfig(max_inflight=1)),
            {"n": 8, "bias": 0})
        assert pipelined.stats.total_cycles < serial.stats.total_cycles

    def test_ii_spacing_slows_issue(self, fabric):
        _setup_copy(fabric, n=4)
        fast = fabric.run_kernel(CopyKernel(name="copy"), {"n": 4, "bias": 0})
        slow_fabric = Fabric()
        _setup_copy(slow_fabric, n=4)
        slow = slow_fabric.run_kernel(
            CopyKernel(name="copy", pipeline=PipelineConfig(ii=50)),
            {"n": 4, "bias": 0})
        assert slow.stats.total_cycles > fast.stats.total_cycles

    def test_issue_stall_recorded_when_pipeline_full(self, fabric):
        _setup_copy(fabric, n=16)
        engine = fabric.run_kernel(
            CopyKernel(name="copy", pipeline=PipelineConfig(max_inflight=2)),
            {"n": 16, "bias": 0})
        assert engine.stats.issue_stall_cycles > 0

    def test_double_start_rejected(self, fabric):
        _setup_copy(fabric)
        engine = fabric.launch(CopyKernel(name="copy"), {"n": 1, "bias": 0})
        with pytest.raises(KernelError):
            engine.start()

    def test_kernel_exception_surfaces(self, fabric):
        class Exploding(SingleTaskKernel):
            def iteration_space(self, args):
                return [0]
            def body(self, ctx):
                yield ctx.compute(1)
                raise ValueError("bad kernel")
        with pytest.raises(ProcessError, match="bad kernel"):
            fabric.run_kernel(Exploding(name="boom"), {})

    def test_yielding_non_op_is_build_error(self, fabric):
        class BadYield(SingleTaskKernel):
            def iteration_space(self, args):
                return [0]
            def body(self, ctx):
                yield 42
        with pytest.raises(ProcessError, match="must yield Op"):
            fabric.run_kernel(BadYield(name="bad"), {})

    def test_body_not_implemented(self, fabric):
        kernel = SingleTaskKernel(name="abstract")
        with pytest.raises((NotImplementedError, ProcessError)):
            fabric.run_kernel(kernel, {})


class TestSiteDerivation:
    def test_one_source_line_one_lsu(self, fabric):
        _setup_copy(fabric, n=6)
        engine = fabric.run_kernel(CopyKernel(name="copy"), {"n": 6, "bias": 0})
        loads = [(site, lsu) for (site, kind), lsu in engine.lsus.items()
                 if kind == "load"]
        assert len(loads) == 1               # one static load site
        assert loads[0][1].stats.completed == 6

    def test_explicit_site_label_used(self, fabric):
        class Labelled(SingleTaskKernel):
            def iteration_space(self, args):
                return [0]
            def body(self, ctx):
                yield ctx.load("src", 0, site="my_site")
        _setup_copy(fabric)
        engine = fabric.run_kernel(Labelled(name="labelled"), {})
        assert ("my_site", "load") in engine.lsus


class TestNDRange:
    def test_global_size_required(self, fabric):
        kernel = NDRangeKernel(name="abstract")
        with pytest.raises(NotImplementedError):
            list(kernel.iteration_space({}))

    def test_bad_policy_rejected(self):
        with pytest.raises(KernelBuildError):
            NDRangeKernel(policy="bogus")

    def test_workitem_interleaving_observable(self, fabric):
        issue_order = []
        class Probe(NDRangeKernel):
            def global_size(self, args):
                return 3
            def trip_count(self, args):
                return 2
            def body(self, ctx):
                issue_order.append(ctx.iteration)
                yield ctx.compute(1)
        fabric.run_kernel(Probe(name="probe"), {})
        assert issue_order == [(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]

    def test_global_id_property(self, fabric):
        gids = []
        class Probe(NDRangeKernel):
            def global_size(self, args):
                return 4
            def body(self, ctx):
                gids.append(ctx.global_id)
                yield ctx.compute(1)
        fabric.run_kernel(Probe(name="probe"), {})
        assert sorted(gids) == [0, 1, 2, 3]


class TestAutorun:
    def test_autorun_cannot_be_enqueued(self, fabric):
        with pytest.raises(KernelBuildError):
            PipelineEngine(fabric, TickKernel())

    def test_pipeline_kernel_cannot_be_autorun(self, fabric):
        with pytest.raises(KernelBuildError):
            AutorunEngine(fabric, CopyKernel(name="copy"))

    def test_ticks_every_cycle(self, fabric):
        kernel = TickKernel()
        fabric.add_autorun(kernel)
        fabric.advance(5)
        assert kernel.ticks[:5] == [0, 1, 2, 3, 4]

    def test_launch_skew_delays_start(self, fabric):
        kernel = TickKernel()
        kernel.launch_skew = 3
        fabric.add_autorun(kernel)
        fabric.advance(6)
        assert kernel.ticks[0] == 3

    def test_stop_halts_units(self, fabric):
        kernel = TickKernel()
        engine = fabric.add_autorun(kernel)
        fabric.advance(3)
        engine.stop()
        fabric.advance(5)
        count_after_stop = len(kernel.ticks)
        fabric.advance(5)
        assert len(kernel.ticks) == count_after_stop

    def test_replication_gives_distinct_compute_ids(self, fabric):
        seen = []
        class IdProbe(AutorunKernel):
            def __init__(self):
                super().__init__(name="probe", num_compute_units=3)
            def body(self, ctx):
                seen.append(ctx.compute_id)
                while True:
                    yield ctx.cycle()
        fabric.add_autorun(IdProbe())
        fabric.advance(2)
        assert sorted(seen) == [0, 1, 2]

    def test_autorun_has_no_iteration_space(self):
        with pytest.raises(KernelBuildError):
            list(TickKernel().iteration_space({}))

    def test_phase_validation(self):
        with pytest.raises(KernelBuildError):
            AutorunKernel(phase="middle")


class TestFabric:
    def test_deadlock_detected(self, fabric):
        channel = fabric.channels.declare("never_written", depth=1)
        class Blocked(SingleTaskKernel):
            def iteration_space(self, args):
                return [0]
            def body(self, ctx):
                yield ctx.read_channel(channel)
        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="deadlock"):
            fabric.run_kernel(Blocked(name="blocked"), {})

    def test_advance_negative_rejected(self, fabric):
        with pytest.raises(KernelError):
            fabric.advance(-1)

    def test_local_memory_lookup_error(self, fabric):
        class NoLocals(SingleTaskKernel):
            def iteration_space(self, args):
                return [0]
            def body(self, ctx):
                yield ctx.load_local("ghost", 0)
        with pytest.raises(ProcessError, match="no local memory"):
            fabric.run_kernel(NoLocals(name="nl"), {})

    def test_create_locals_used_by_context(self, fabric):
        from repro.memory.local_memory import LocalMemory
        results = []
        class WithLocal(SingleTaskKernel):
            def create_locals(self, fab, compute_id):
                return {"scratch": LocalMemory(fab.sim, "scratch", 16)}
            def iteration_space(self, args):
                return [0]
            def body(self, ctx):
                yield ctx.store_local("scratch", 2, 7)
                value = yield ctx.load_local("scratch", 2)
                results.append(value)
        fabric.run_kernel(WithLocal(name="wl"), {})
        assert results == [7]


class TestResourceProfileArithmetic:
    def test_merged_sums_counters(self):
        a = ResourceProfile(load_sites=1, adders=2, intrinsic_path_ns=0.5)
        b = ResourceProfile(load_sites=2, adders=1, intrinsic_path_ns=0.9)
        merged = a.merged(b)
        assert merged.load_sites == 3
        assert merged.adders == 3
        assert merged.intrinsic_path_ns == 0.9  # max, not sum

    def test_scaled_multiplies_counters(self):
        profile = ResourceProfile(load_sites=2, local_memory_bits=100,
                                  intrinsic_path_ns=0.3)
        scaled = profile.scaled(4)
        assert scaled.load_sites == 8
        assert scaled.local_memory_bits == 400
        assert scaled.intrinsic_path_ns == 0.3  # path does not replicate
