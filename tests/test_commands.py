"""Unit tests for the ibuffer state machine (Figure 3)."""

from __future__ import annotations

import pytest

from repro.core.commands import (
    COMMAND_TRANSITIONS,
    IBufferCommand,
    IBufferState,
    SamplingMode,
    next_state,
)
from repro.errors import IBufferError


class TestTransitions:
    def test_reset_to_sample(self):
        assert next_state(IBufferState.RESET,
                          IBufferCommand.SAMPLE) == IBufferState.SAMPLE

    def test_sample_to_stop(self):
        assert next_state(IBufferState.SAMPLE,
                          IBufferCommand.STOP) == IBufferState.STOP

    def test_stop_to_read(self):
        assert next_state(IBufferState.STOP,
                          IBufferCommand.READ) == IBufferState.READ

    def test_sample_to_read_allowed(self):
        assert next_state(IBufferState.SAMPLE,
                          IBufferCommand.READ) == IBufferState.READ

    def test_any_state_resets(self):
        for state in IBufferState:
            assert next_state(state, IBufferCommand.RESET) == IBufferState.RESET

    def test_illegal_command_ignored_not_raised(self):
        # READ -> SAMPLE without a RESET would corrupt the read pointer;
        # hardware ignores it.
        assert next_state(IBufferState.READ,
                          IBufferCommand.SAMPLE) == IBufferState.READ

    def test_unknown_command_raises(self):
        with pytest.raises(IBufferError):
            next_state(IBufferState.RESET, 99)

    def test_int_command_coerced(self):
        assert next_state(IBufferState.RESET, 1) == IBufferState.SAMPLE

    def test_transition_table_only_contains_valid_pairs(self):
        for (state, command), target in COMMAND_TRANSITIONS.items():
            assert isinstance(state, IBufferState)
            assert isinstance(command, IBufferCommand)
            assert isinstance(target, IBufferState)


class TestEnums:
    def test_sampling_modes(self):
        assert SamplingMode.LINEAR != SamplingMode.CYCLIC

    def test_command_values_stable_for_channel_encoding(self):
        # These integer encodings cross the command channel; they must not
        # drift between releases.
        assert int(IBufferCommand.RESET) == 0
        assert int(IBufferCommand.SAMPLE) == 1
        assert int(IBufferCommand.STOP) == 2
        assert int(IBufferCommand.READ) == 3
