"""Property-based tests for the trace buffer and entry layouts."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.commands import SamplingMode
from repro.core.trace_buffer import EntryLayout, TraceBuffer
from repro.memory.local_memory import LocalMemory
from repro.sim.core import Simulator

_LAYOUT = EntryLayout(("timestamp", "value"))
_entries = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2**31),
              st.integers(min_value=-2**31, max_value=2**31)),
    min_size=0, max_size=50)


def _make(depth, mode):
    sim = Simulator()
    memory = LocalMemory(sim, "trace", depth * _LAYOUT.words_per_entry)
    return TraceBuffer(memory, _LAYOUT, depth, mode)


class TestLinearProperties:
    @given(entries=_entries, depth=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_linear_keeps_exact_prefix(self, entries, depth):
        buffer = _make(depth, SamplingMode.LINEAR)
        for timestamp, value in entries:
            buffer.write({"timestamp": timestamp, "value": value})
        stored = [(e["timestamp"], e["value"]) for e in buffer.entries()]
        assert stored == entries[:depth]
        assert buffer.dropped == max(0, len(entries) - depth)


class TestCyclicProperties:
    @given(entries=_entries, depth=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_cyclic_keeps_exact_suffix(self, entries, depth):
        buffer = _make(depth, SamplingMode.CYCLIC)
        for timestamp, value in entries:
            buffer.write({"timestamp": timestamp, "value": value})
        stored = [(e["timestamp"], e["value"]) for e in buffer.entries()]
        assert stored == entries[-depth:]
        assert buffer.dropped == 0

    @given(entries=_entries, depth=st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_reset_restores_empty_state(self, entries, depth):
        buffer = _make(depth, SamplingMode.CYCLIC)
        for timestamp, value in entries:
            buffer.write({"timestamp": timestamp, "value": value})
        buffer.reset()
        assert buffer.entries() == []
        assert buffer.valid_entries == 0


class TestLayoutRoundtrip:
    @given(fields=st.lists(
        st.text(alphabet="abcdefgh", min_size=1, max_size=6),
        min_size=1, max_size=5, unique=True),
        values=st.data())
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_identity(self, fields, values):
        layout = EntryLayout(tuple(fields))
        entry = {name: values.draw(st.integers(min_value=-2**40,
                                               max_value=2**40))
                 for name in fields}
        assert layout.unpack(layout.pack(entry)) == entry
