"""Integration tests: the paper's experiments must reproduce their shapes.

These run the same code the benchmarks use, at reduced scale where the
full paper parameters would be slow, and assert the qualitative findings.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig2, limitations, sec31, sec51, sec52, table1


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        # Reduced scale; the bench runs the paper's 50x100.
        return fig2.run(n=8, num=12, probe_i=4)

    def test_single_task_is_program_order(self, result):
        assert result.single_task.classification == "program-order"

    def test_ndrange_is_interleaved(self, result):
        assert result.ndrange.classification == "interleaved"

    def test_access_patterns_differ_as_described(self, result):
        num = 12
        assert result.single_task.access_order[:3] == [0, 1, 2]
        assert result.ndrange.access_order[:3] == [0, num, 2 * num]

    def test_both_compute_correct_results(self, result):
        assert result.single_task.result_correct
        assert result.ndrange.result_correct

    def test_execution_times_differ(self, result):
        assert result.runtimes_differ

    def test_render_contains_paper_row_format(self, result):
        assert "info_seq[" in result.render()


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run(depth=256)   # smaller DEPTH; bench uses 2048

    def test_all_rows_present(self, result):
        assert set(result.reports) == {"base", "sm", "wp", "sm+wp"}

    def test_sm_frequency_drop_near_paper(self, result):
        # Paper: 20.5%. Depth does not affect fmax in the model, so the
        # reduced-scale run must match the bench here.
        assert 15.0 <= result.freq_drop_pct("sm") <= 26.0

    def test_wp_behaves_similarly(self, result):
        assert 15.0 <= result.freq_drop_pct("wp") <= 26.0

    def test_instrumented_designs_add_memory(self, result):
        for name in ("sm", "wp", "sm+wp"):
            assert result.memory_bits_delta(name) > 0

    def test_sm_logic_at_most_marginally_above_base(self, result):
        # Paper: SM logic slightly BELOW base (baseline-only retiming).
        assert result.logic_delta_pct("sm") < 2.0

    def test_combined_uses_most_memory(self, result):
        assert (result.reports["sm+wp"].total.memory_bits
                >= result.reports["sm"].total.memory_bits)
        assert (result.reports["sm+wp"].total.memory_bits
                >= result.reports["wp"].total.memory_bits)


class TestSec31:
    @pytest.fixture(scope="class")
    def result(self):
        return sec31.run(chain_size=32, steps=12)

    def test_base_frequency_near_paper(self, result):
        assert result.base.fmax_mhz == pytest.approx(233.3, abs=3.0)

    def test_opencl_counter_frequency_near_paper(self, result):
        assert result.opencl.fmax_mhz == pytest.approx(227.8, abs=3.0)

    def test_hdl_drop_below_three_percent(self, result):
        assert result.freq_drop_pct(result.hdl) < 3.0

    def test_hdl_cheaper_than_opencl_in_logic(self, result):
        assert (result.logic_overhead_pct(result.hdl)
                < result.logic_overhead_pct(result.opencl))

    def test_overheads_are_small(self, result):
        assert result.logic_overhead_pct(result.opencl) < 2.0

    def test_both_patterns_report_step_latencies(self, result):
        assert len(result.step_latencies(result.opencl)) == 11
        assert len(result.step_latencies(result.hdl)) == 11
        # Pointer chasing serializes: every step takes the memory latency.
        assert all(gap > 10 for gap in result.step_latencies(result.hdl))


class TestSec51:
    @pytest.fixture(scope="class")
    def result(self):
        return sec51.run(rows_a=4, col_a=8, col_b=4, depth=256)

    def test_kernel_result_unperturbed(self, result):
        assert result.result_correct

    def test_monitor_matches_lsu_ground_truth(self, result):
        assert result.matches_ground_truth

    def test_stalls_are_visible(self, result):
        assert result.observed_stalls

    def test_latency_distribution_sane(self, result):
        assert result.stats.minimum >= result.unloaded_latency
        assert result.stats.maximum >= result.stats.p95 >= result.stats.p50


class TestSec52:
    @pytest.fixture(scope="class")
    def result(self):
        return sec52.run(n=16, offset=3, src_size=16, depth=128)

    def test_bound_checking_exact(self, result):
        assert result.bound_check_correct
        assert result.expected_bound_violations == 3

    def test_invariance_checking_exact(self, result):
        assert result.invariance_check_correct

    def test_watch_history_collected(self, result):
        assert len(result.watch_hits) > 0


class TestLimitations:
    @pytest.fixture(scope="class")
    def result(self):
        return limitations.run(gap_cycles=30, compiled_depth=8,
                               launch_skew=12)

    def test_healthy_persistent_measures_truth(self, result):
        assert abs(result.healthy_measured - 30) <= 1

    def test_compiled_depth_makes_stale_timestamps(self, result):
        assert result.stale_measured < result.gap_cycles  # badly wrong

    def test_launch_skew_biases_measurement(self, result):
        assert result.skew_error == pytest.approx(-12, abs=1)

    def test_hdl_immune(self, result):
        assert result.hdl_measured == 30


class TestScalability:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import scalability
        return scalability.run(counts=(1, 4), depths=(256, 1024, 4096))

    def test_bits_scale_with_depth(self, result):
        assert result.bits_linear_in_depth(1)
        assert result.bits_linear_in_depth(4)

    def test_fmax_flat_in_depth(self, result):
        assert result.fmax_flat_in_depth(1)

    def test_logic_flat_in_depth(self, result):
        alms = {result.grid[(1, depth)].total.alms
                for depth in (256, 1024, 4096)}
        assert len(alms) == 1

    def test_render(self, result):
        text = result.render()
        assert "scalability" in text
        assert "DEPTH" in text
