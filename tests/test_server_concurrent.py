"""Concurrent-session tests: cache sharing, isolation, backpressure.

Multiple clients hammer one daemon at once. The contract under test:
the program cache is shared (N concurrent compiles of one new source
produce exactly one miss), while sessions stay isolated (interleaved
runs produce disjoint per-session trace bundles, each byte-identical
to the same work done serially in-process).
"""

from __future__ import annotations

import threading

import pytest

from repro.server import protocol
from repro.server.client import Client
from repro.server.daemon import ServerConfig, start_server_thread
from repro.server.protocol import ServerError

SCALE_TEMPLATE = """
__kernel void scale(__global int* data, int n, int factor) {{
    for (int i = 0; i < n; i++) {{
        data[i] = data[i] * factor;
    }}
}}
// variant {tag}
"""

SLOW = """
__kernel void slow(__global int* out, int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc = acc + i;
        out[0] = acc;
    }
}
"""


@pytest.fixture(scope="module")
def server():
    handle = start_server_thread(ServerConfig(workers=0))
    yield handle
    handle.stop()


def _run_clients(address, count, body):
    """Run ``body(client, index, out_list)`` in ``count`` threads."""
    results = [None] * count
    errors = []

    def worker(index):
        try:
            with Client(address) as client:
                client.open_session()
                results[index] = body(client, index)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append((index, exc))

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, f"client threads failed: {errors}"
    return results


class TestSharedCache:
    def test_concurrent_compiles_share_one_miss(self, server):
        """N clients compiling the same new source -> exactly one miss."""
        source = SCALE_TEMPLATE.format(tag="shared-miss-probe")
        outcomes = _run_clients(
            server.address, 6,
            lambda client, index: client.compile(source)["cache"])
        assert sorted(outcomes).count("miss") == 1
        assert sorted(outcomes).count("hit") == 5

    def test_distinct_sources_each_miss_once(self, server):
        sources = [SCALE_TEMPLATE.format(tag=f"distinct-{i}")
                   for i in range(4)]
        outcomes = _run_clients(
            server.address, 4,
            lambda client, index: client.compile(sources[index])["cache"])
        assert outcomes == ["miss"] * 4

    def test_cache_counters_visible_in_stats(self, server):
        with Client(server.address) as client:
            client.open_session()
            before = client.stats()["cache"]
            source = SCALE_TEMPLATE.format(tag="counter-probe")
            client.compile(source)
            client.compile(source)
            after = client.stats()["cache"]
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] >= before["hits"] + 1


class TestSessionIsolation:
    # (n, num) per session: different workloads, so any cross-session
    # bleed shows up as a wrong record count or byte diff.
    WORKLOADS = [(4, 6), (5, 7), (6, 9)]

    def test_interleaved_runs_yield_disjoint_identical_bundles(
            self, server, tmp_path):
        def body(client, index):
            n, num = self.WORKLOADS[index]
            client.subscribe()
            client.run_experiment("fig2", params={"n": n, "num": num},
                                  trace=True)
            path = tmp_path / f"session{index}.ctb"
            rows = client.save_trace(str(path))
            return path, rows

        results = _run_clients(server.address, len(self.WORKLOADS), body)

        from repro.experiments import registry
        from repro.trace.columnar import ColumnarSink
        from repro.trace.hub import TraceHub

        contents = []
        for index, (path, rows) in enumerate(results):
            n, num = self.WORKLOADS[index]
            serial = tmp_path / f"serial{index}.ctb"
            hub = TraceHub()
            hub.attach(ColumnarSink(str(serial), hub.registry))
            registry.run_experiment("fig2", hub=hub, n=n, num=num)
            hub.close()
            streamed = path.read_bytes()
            assert streamed == serial.read_bytes()
            assert rows == sum(hub.counts.values())
            contents.append(streamed)
        # Different workloads really produced different bundles.
        assert len({len(c) for c in contents}) == len(contents) or \
            len(set(contents)) == len(contents)

    def test_session_buffers_do_not_leak(self, server):
        source = SCALE_TEMPLATE.format(tag="buffer-isolation")

        def body(client, index):
            client.call("buffer.create",
                        {"name": "x", "size": 4, "fill": [index] * 4})
            client.run_kernel(source=source, kernel="scale",
                              args={"n": 4, "factor": 10},
                              buffers={"data": {"session": "x"}})
            return client.call("buffer.read", {"name": "x"})["values"]

        results = _run_clients(server.address, 4, body)
        assert results == [[i * 10] * 4 for i in range(4)]

    def test_trace_records_stay_per_session(self, server):
        def body(client, index):
            if index == 0:
                client.run_experiment("fig2", params={"n": 4, "num": 6},
                                      trace=True)
            barrier.wait(timeout=60)
            return client.query(schema="run.span")["rows"]

        barrier = threading.Barrier(2)
        with_trace, without_trace = _run_clients(server.address, 2, body)
        assert with_trace
        assert without_trace == []


class TestConcurrentBackpressure:
    def test_busy_rejection_while_neighbour_session_unaffected(self):
        """One saturated session gets ``busy``; another keeps running."""
        handle = start_server_thread(
            ServerConfig(workers=0, session_queue_limit=1))
        try:
            with Client(handle.address) as greedy, \
                    Client(handle.address) as polite:
                greedy.open_session()
                polite.open_session()
                program = greedy.compile(SLOW)["program"]
                job = greedy.enqueue(program=program, kernel="slow",
                                     args={"n": 60000},
                                     buffers={"out": {"size": 1}})
                with pytest.raises(ServerError) as excinfo:
                    greedy.enqueue(program=program, kernel="slow",
                                   args={"n": 2},
                                   buffers={"out": {"size": 1}})
                assert excinfo.value.code == protocol.E_BUSY
                assert excinfo.value.data["scope"] == "session"
                assert excinfo.value.data["queue_depth"] == 1
                # The other session's queue is independent.  Program
                # handles are per-session; polite compiles its own copy
                # (a shared-cache hit).
                assert polite.compile(SLOW)["cache"] == "hit"
                other = polite.run_kernel(source=SLOW, kernel="slow",
                                          args={"n": 3},
                                          buffers={"out": {"size": 1}})
                assert other["buffers"]["out"] == [3]
                assert greedy.wait(job["job"])["buffers"]["out"] == \
                    [sum(range(60000))]
        finally:
            handle.stop()
