"""Unit tests for iteration-space schedules."""

from __future__ import annotations

import pytest

from repro.errors import KernelBuildError
from repro.pipeline.schedule import (
    NDRANGE_POLICIES,
    flattened,
    i_major,
    k_major,
    ndrange_schedule,
)


class TestKMajor:
    def test_program_order(self):
        assert list(k_major(2, 3)) == [(0, 0), (0, 1), (0, 2),
                                       (1, 0), (1, 1), (1, 2)]

    def test_empty_extents(self):
        assert list(k_major(0, 5)) == []
        assert list(k_major(5, 0)) == []

    def test_negative_extent_rejected(self):
        with pytest.raises(KernelBuildError):
            list(k_major(-1, 2))


class TestIMajor:
    def test_interleaved_order(self):
        assert list(i_major(3, 2)) == [(0, 0), (1, 0), (2, 0),
                                       (0, 1), (1, 1), (2, 1)]

    def test_same_elements_as_k_major(self):
        assert sorted(i_major(4, 5)) == sorted(k_major(4, 5))


class TestFlattened:
    def test_three_deep(self):
        space = list(flattened((2, 1, 2)))
        assert space == [(0, 0, 0), (0, 0, 1), (1, 0, 0), (1, 0, 1)]

    def test_empty_tuple_yields_unit(self):
        assert list(flattened(())) == [()]

    def test_count_is_product(self):
        assert len(list(flattened((3, 4, 2)))) == 24


class TestNDRangeSchedule:
    def test_interleaved_policy_is_i_major(self):
        assert list(ndrange_schedule(3, 2)) == list(i_major(3, 2))

    def test_serial_policy_is_k_major(self):
        assert (list(ndrange_schedule(3, 2, policy="workitem-serial"))
                == list(k_major(3, 2)))

    def test_unknown_policy_rejected(self):
        with pytest.raises(KernelBuildError):
            ndrange_schedule(2, 2, policy="magic")

    def test_policy_names_exported(self):
        assert "workitem-interleaved" in NDRANGE_POLICIES

    def test_memory_access_pattern_difference(self):
        """The §3.2 observation: x-index order differs between modes."""
        num = 100
        serial = [k * num + i for k, i in ndrange_schedule(
            3, 3, policy="workitem-serial")]
        interleaved = [k * num + i for k, i in ndrange_schedule(3, 3)]
        assert serial[:3] == [0, 1, 2]               # x[0], x[1], x[2]...
        assert interleaved[:3] == [0, 100, 200]      # x[0], x[100], x[200]...
