"""Property-based tests for the OpenCL-C frontend.

Random integer expressions compiled and executed on the fabric must agree
with a Python reference using C semantics (truncating division).
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.frontend import compile_source, parse, tokenize
from repro.pipeline.fabric import Fabric

# -- expression generator ----------------------------------------------------

_literals = st.integers(min_value=0, max_value=200)


def _c_div(a: int, b: int) -> int:
    return int(a / b)


def _c_mod(a: int, b: int) -> int:
    return a - _c_div(a, b) * b


@st.composite
def _expressions(draw, depth=0):
    """Returns (source_text, python_value) pairs."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(_literals)
        return str(value), value
    op = draw(st.sampled_from(["+", "-", "*", "/", "%", "<", ">", "==",
                               "&&", "||"]))
    left_src, left_val = draw(_expressions(depth=depth + 1))
    right_src, right_val = draw(_expressions(depth=depth + 1))
    source = f"({left_src} {op} {right_src})"
    if op == "+":
        return source, left_val + right_val
    if op == "-":
        return source, left_val - right_val
    if op == "*":
        return source, left_val * right_val
    if op == "/":
        assume(right_val != 0)
        return source, _c_div(left_val, right_val)
    if op == "%":
        assume(right_val != 0)
        return source, _c_mod(left_val, right_val)
    if op == "<":
        return source, 1 if left_val < right_val else 0
    if op == ">":
        return source, 1 if left_val > right_val else 0
    if op == "==":
        return source, 1 if left_val == right_val else 0
    if op == "&&":
        return source, 1 if (left_val and right_val) else 0
    return source, 1 if (left_val or right_val) else 0


class TestExpressionSemantics:
    @given(pair=_expressions())
    @settings(max_examples=60, deadline=None)
    def test_compiled_expression_matches_reference(self, pair):
        source_expr, expected = pair
        fabric = Fabric()
        program = compile_source(fabric, f"""
            __kernel void k(__global int* out) {{
                out[0] = {source_expr};
            }}
        """)
        fabric.memory.allocate("O", 1)
        fabric.run_kernel(program.kernel("k"), {"out": "O"})
        assert fabric.memory.buffer("O").read(0) == expected


class TestLexerProperties:
    @given(identifiers=st.lists(
        st.from_regex(r"[a-z_][a-z0-9_]{0,8}", fullmatch=True),
        min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_identifier_stream_roundtrip(self, identifiers):
        from repro.frontend.lexer import KEYWORDS, TYPE_NAMES
        assume(all(name not in KEYWORDS and name not in TYPE_NAMES
                   for name in identifiers))
        tokens = tokenize(" ".join(identifiers))
        assert [t.text for t in tokens[:-1]] == identifiers

    @given(value=st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=50, deadline=None)
    def test_number_roundtrip_decimal_and_hex(self, value):
        for text in (str(value), hex(value)):
            token = tokenize(text)[0]
            assert token.kind == "number"
            assert int(token.text, 0) == value


class TestParserProperties:
    @given(depth=st.integers(min_value=1, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_deeply_nested_blocks(self, depth):
        body = "x = 1;"
        for _ in range(depth):
            body = "{ " + body + " }"
        program = parse(f"__kernel void k(void) {{ int x; {body} }}")
        assert program.kernels[0].name == "k"

    @given(count=st.integers(min_value=1, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_many_statements(self, count):
        statements = "".join(f"int v{i} = {i};" for i in range(count))
        program = parse(f"__kernel void k(void) {{ {statements} }}")
        assert len(program.kernels[0].body.statements) == count


class TestLoopEquivalence:
    @given(n=st.integers(min_value=0, max_value=20),
           scale=st.integers(min_value=-5, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_for_and_while_compute_identically(self, n, scale):
        """The same accumulation written as for- and while-loops must
        produce identical results and identical cycle counts."""
        for_source = f"""
            __kernel void k(__global int* out) {{
                int acc = 0;
                for (int i = 0; i < {n}; i++) {{ acc += i * {scale}; }}
                out[0] = acc;
            }}
        """
        while_source = f"""
            __kernel void k(__global int* out) {{
                int acc = 0;
                int i = 0;
                while (i < {n}) {{ acc += i * {scale}; i++; }}
                out[0] = acc;
            }}
        """
        results = []
        for source in (for_source, while_source):
            fabric = Fabric()
            program = compile_source(fabric, source)
            fabric.memory.allocate("O", 1)
            engine = fabric.run_kernel(program.kernel("k"), {"out": "O"})
            results.append((fabric.memory.buffer("O").read(0),
                            engine.stats.total_cycles))
        assert results[0] == results[1]
        assert results[0][0] == sum(i * scale for i in range(n))
