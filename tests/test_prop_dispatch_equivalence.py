"""Property test: the fast dispatch executor is observationally equal to
the reference op executor.

The fast drive loop (type-keyed dispatch, inlined hot ops, zero-cycle
compute fusion, analytic LSU retirement) is a pure optimisation — for any
kernel it must produce the same values, the same timestamps, and the same
statistics as the retained reference executor. Hypothesis generates small
random op programs and runs each on two independent fabrics, one per
executor, then compares every externally observable surface.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.memory.local_memory import LocalMemory
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import PipelineConfig, SingleTaskKernel

# One program step = (op kind, payload). Indices stay under the buffer /
# scratchpad sizes allocated in _run.
_steps = st.lists(
    st.one_of(
        st.tuples(st.just("load"), st.integers(0, 63)),
        st.tuples(st.just("store"), st.integers(0, 63)),
        st.tuples(st.just("load_local"), st.integers(0, 15)),
        st.tuples(st.just("store_local"), st.integers(0, 15)),
        st.tuples(st.just("compute"), st.integers(0, 4)),
        st.tuples(st.just("fence"), st.just(0)),
        st.tuples(st.just("cycle"), st.just(0)),
    ),
    min_size=1, max_size=12)


class _Program(SingleTaskKernel):
    """Replays a generated op list, recording (step, now, value) tuples."""

    def __init__(self, steps, iterations, **kw):
        super().__init__(**kw)
        self.steps = steps
        self.iterations = iterations
        self.observed = []

    def iteration_space(self, args):
        return range(self.iterations)

    def create_locals(self, fabric, compute_id):
        return {"scratch": LocalMemory(
            fabric.sim, f"{self.name}.cu{compute_id}.scratch", 16)}

    def body(self, ctx):
        base = ctx.iteration
        for step, (kind, operand) in enumerate(self.steps):
            if kind == "load":
                value = yield ctx.load("data", operand)
            elif kind == "store":
                value = yield ctx.store("data", operand, base * 100 + step)
            elif kind == "load_local":
                value = yield ctx.load_local("scratch", operand)
            elif kind == "store_local":
                value = yield ctx.store_local("scratch", operand,
                                              base * 100 + step)
            elif kind == "compute":
                value = yield ctx.compute(operand, value=step * 7)
            elif kind == "fence":
                value = yield ctx.mem_fence()
            else:
                value = yield ctx.cycle()
            self.observed.append((step, ctx.now, value))


def _run(steps, iterations, inflight, executor):
    fabric = Fabric(keep_lsu_samples=True)
    fabric.memory.allocate("data", 64).fill(range(64))
    kernel = _Program(steps, iterations, name="prog",
                      pipeline=PipelineConfig(max_inflight=inflight))
    engine = fabric.run_kernel(kernel, {}, executor=executor)
    return fabric, kernel, engine


def _lsu_snapshot(engine):
    snapshot = {}
    for (site, kind), lsu in engine.lsus.items():
        stats = lsu.stats
        snapshot[(site, kind)] = (
            stats.issued, stats.completed, stats.total_latency,
            stats.max_latency, stats.ordering_stall_cycles,
            tuple(stats.samples))
    return snapshot


class TestBroadcastCohortPreemption:
    """Regression: a broadcast-tick cohort must be preemptible.

    With per-process ticks (reference executor) an iteration retiring
    mid-cycle frees a pipeline slot whose NORMAL-lane wake-up lets the
    launcher issue the next iteration *before* the remaining LATE-lane
    cycle waiters resume. The coalesced broadcast tick used to run its
    whole cohort atomically, flipping the wake order one cycle later;
    the event loop now parks the un-resumed waiters when an earlier lane
    fills up (see Simulator._step_broadcast).
    """

    def test_launcher_preempts_remaining_cycle_waiters(self):
        steps = [("cycle", 0), ("cycle", 0)]
        fast = _run(steps, 4, 2, "fast")
        ref = _run(steps, 4, 2, "reference")
        assert fast[1].observed == ref[1].observed
        assert fast[0].sim.now == ref[0].sim.now
        assert fast[2].stats.iteration_trace == ref[2].stats.iteration_trace


class TestExecutorEquivalence:
    @given(steps=_steps,
           iterations=st.integers(1, 4),
           inflight=st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_fast_matches_reference(self, steps, iterations, inflight):
        fast = _run(steps, iterations, inflight, "fast")
        ref = _run(steps, iterations, inflight, "reference")
        fast_fabric, fast_kernel, fast_engine = fast
        ref_fabric, ref_kernel, ref_engine = ref

        # Every value and timestamp the body observed.
        assert fast_kernel.observed == ref_kernel.observed
        # Wall-clock and engine accounting.
        assert fast_fabric.sim.now == ref_fabric.sim.now
        fs, rs = fast_engine.stats, ref_engine.stats
        assert (fs.iterations_issued, fs.iterations_retired) == \
            (rs.iterations_issued, rs.iterations_retired)
        assert (fs.start_cycle, fs.finish_cycle) == \
            (rs.start_cycle, rs.finish_cycle)
        assert fs.issue_stall_cycles == rs.issue_stall_cycles
        assert fs.iteration_trace == rs.iteration_trace
        # Same static sites spawned the same LSUs with the same timings.
        assert _lsu_snapshot(fast_engine) == _lsu_snapshot(ref_engine)
        # Memory contents converged identically.
        fast_data = fast_fabric.memory.buffer("data")
        ref_data = ref_fabric.memory.buffer("data")
        assert [fast_data.read(i) for i in range(64)] == \
            [ref_data.read(i) for i in range(64)]
