"""The channel rendezvous fast path: fewer events, same semantics.

Blocking ``write``/``read`` now complete synchronously whenever the FIFO
has room / data (or a parked counterpart to rendezvous with), instead of
always parking on a Store event and waking through the event queue. These
tests pin both halves of that claim: the event-traffic reduction (counted
by wrapping ``Simulator._schedule``) and the unchanged visible semantics
— values, ordering, stall cycles, occupancy stats — that the channel and
ordering property suites also guard.
"""

from __future__ import annotations

import pytest

from repro.channels.channel import Channel
from repro.sim.core import Simulator


@pytest.fixture
def sim():
    return Simulator()


def _count_schedules(sim):
    """Patch ``sim._schedule`` to count calls; returns the counter box."""
    box = {"count": 0}
    original = sim._schedule

    def counting(event, delay, priority):
        box["count"] += 1
        original(event, delay, priority)

    sim._schedule = counting
    return box


class TestEventTraffic:
    def test_streaming_transfers_schedule_constant_events(self, sim):
        """A lockstep producer/consumer pair used to pay ~2 store events
        per transfer; with the fast path the hand-off is synchronous and
        only the pacing timeouts hit the event queue."""
        N = 200
        channel = Channel(sim, "c", depth=4)
        received = []

        def producer():
            for value in range(N):
                yield from channel.write(value)
                yield sim.timeout(1)

        def consumer():
            for _ in range(N):
                value = yield from channel.read()
                received.append(value)
                yield sim.timeout(1)

        counter = _count_schedules(sim)
        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == list(range(N))
        # 2N pacing timeouts + startup/teardown; the old slow path added
        # ~2 more scheduled events per transfer (~4N total).
        assert counter["count"] <= 2 * N + 20

    def test_burst_into_open_capacity_schedules_nothing_extra(self, sim):
        """Writes into free capacity complete without touching the queue."""
        channel = Channel(sim, "c", depth=8)

        def producer():
            for value in range(8):
                yield from channel.write(value)
            yield sim.timeout(0)

        counter = _count_schedules(sim)
        sim.process(producer())
        sim.run()
        # process start + the single explicit timeout, not 8 put events
        assert counter["count"] <= 4
        assert channel.occupancy == 8


class TestSemanticsPreserved:
    def test_write_wakes_parked_reader_with_value(self, sim):
        channel = Channel(sim, "c", depth=2)
        got = []

        def consumer():
            value = yield from channel.read()
            got.append((sim.now, value))

        def producer():
            yield sim.timeout(3)
            yield from channel.write("v")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(3, "v")]
        assert channel.stats.read_stall_cycles == 3
        assert channel.stats.write_stall_cycles == 0

    def test_read_promotes_parked_writer_in_order(self, sim):
        """A read from a full FIFO frees one slot; the oldest parked
        writer's value must land in that slot (FIFO order preserved)."""
        channel = Channel(sim, "c", depth=1)
        done = []
        received = []

        def producer():
            for value in range(4):
                yield from channel.write(value)
                done.append((sim.now, value))

        def consumer():
            for _ in range(4):
                yield sim.timeout(2)
                value = yield from channel.read()
                received.append(value)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == [0, 1, 2, 3]
        assert channel.stats.writes == 4
        assert channel.stats.reads == 4
        assert channel.stats.write_stall_cycles > 0

    def test_interleaved_bursts_keep_fifo_order(self, sim):
        channel = Channel(sim, "c", depth=3)
        received = []

        def producer():
            for value in range(10):
                yield from channel.write(value)
                if value % 3 == 0:
                    yield sim.timeout(2)

        def consumer():
            for _ in range(10):
                value = yield from channel.read()
                received.append(value)
                if value % 4 == 0:
                    yield sim.timeout(3)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == list(range(10))

    def test_occupancy_stats_track_fast_path_writes(self, sim):
        channel = Channel(sim, "c", depth=4)

        def producer():
            for value in range(3):
                yield from channel.write(value)
            yield sim.timeout(0)

        sim.process(producer())
        sim.run()
        assert channel.stats.writes == 3
        assert channel.stats.max_occupancy == 3

    def test_depth_zero_rendezvous_unchanged(self, sim):
        """Depth-0 blocking write completes only when a reader arrives
        (Listing 5 sequencing) — the fast path must not alter this."""
        channel = Channel(sim, "c", depth=0)
        write_done = []
        got = []

        def producer():
            yield from channel.write("rv")
            write_done.append(sim.now)

        def consumer():
            yield sim.timeout(6)
            value = yield from channel.read()
            got.append((sim.now, value))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert write_done == [6]
        assert got == [(6, "rv")]

    def test_reader_first_then_depth_zero_write(self, sim):
        channel = Channel(sim, "c", depth=0)
        got = []

        def consumer():
            value = yield from channel.read()
            got.append((sim.now, value))

        def producer():
            yield sim.timeout(4)
            yield from channel.write(99)

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(4, 99)]
