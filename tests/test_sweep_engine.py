"""Unit tests for the sweep engine: specs, runner, retry, trace merge."""

from __future__ import annotations

import os

import pytest

from repro.sweep import (
    PointResult,
    SweepError,
    SweepPoint,
    SweepSpec,
    WorkerPool,
    default_chunk_size,
    default_workers,
    resolve_callable,
    run_sweep,
)

HERE = "tests.test_sweep_engine"


# -- module-level point functions (must be importable by workers) -----------

def square(x):
    return x * x


def record_pid(x):
    return {"x": x, "pid": os.getpid()}


def fail_always(x):
    raise RuntimeError(f"point {x} is broken")


def fail_once(marker_path, x):
    """Fails on the first execution, succeeds on the retry."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w", encoding="utf-8") as handle:
            handle.write("attempted")
        raise RuntimeError("first attempt fails")
    return f"recovered-{x}"


def emit_records(count, trace=None):
    for index in range(count):
        trace.emit("order.record", ts=index, kernel="k", cu=0,
                   site=f"s{index}", seq=index, outer=0, inner=index)
    return count


def emit_dynamic_schema(trace=None):
    trace.ensure_schema("ibuffer.custom", ("alpha", "beta"))
    trace.emit("ibuffer.custom", ts=1, kernel="k", cu=0, site="s",
               alpha=7, beta=9)
    return 1


def _points(values, func="square"):
    return [SweepPoint(key=(value,), func=f"{HERE}:{func}",
                       kwargs={"x": value}) for value in values]


class TestSpec:
    def test_resolve_callable(self):
        assert resolve_callable(f"{HERE}:square") is square

    @pytest.mark.parametrize("path", ["nodots", "tests.test_sweep_engine:",
                                      ":square", "no.such.module:f",
                                      f"{HERE}:missing_attr",
                                      f"{HERE}:HERE"])
    def test_resolve_callable_rejects(self, path):
        with pytest.raises(SweepError):
            resolve_callable(path)

    def test_empty_spec_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec(name="empty", points=[])

    def test_duplicate_keys_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec(name="dup", points=_points([1]) + _points([1]))

    def test_keys_in_order(self):
        spec = SweepSpec(name="s", points=_points([3, 1, 2]))
        assert spec.keys() == [(3,), (1,), (2,)]


class TestSerialExecution:
    def test_values_and_order(self):
        spec = SweepSpec(name="s", points=_points([4, 2, 9]))
        outcome = run_sweep(spec, serial=True)
        assert outcome.serial
        assert [result.key for result in outcome.results] == [(4,), (2,), (9,)]
        assert outcome.value_map() == {(4,): 16, (2,): 4, (9,): 81}
        assert not outcome.failures
        outcome.raise_if_failed()   # no-op

    def test_failure_recorded_not_raised(self):
        spec = SweepSpec(name="s", points=_points([1], "fail_always")
                         + _points([2]))
        outcome = run_sweep(spec, serial=True)
        failed = outcome.results[0]
        assert failed.status == "failed"
        assert "point 1 is broken" in failed.error
        assert failed.attempts == 2          # retried once, then reported
        assert outcome.results[1].ok
        with pytest.raises(SweepError, match="1/2 points failed"):
            outcome.raise_if_failed()

    def test_retry_once_recovers(self, tmp_path):
        marker = str(tmp_path / "marker")
        spec = SweepSpec(name="s", points=[SweepPoint(
            key=("flaky",), func=f"{HERE}:fail_once",
            kwargs={"marker_path": marker, "x": 1})])
        outcome = run_sweep(spec, serial=True)
        result = outcome.results[0]
        assert result.ok and result.value == "recovered-1"
        assert result.attempts == 2
        assert outcome.retried == [result]


class TestParallelExecution:
    def test_matches_serial(self):
        spec = SweepSpec(name="s", points=_points(list(range(13))))
        serial = run_sweep(spec, serial=True)
        parallel = run_sweep(spec, workers=2, chunk_size=3)
        assert parallel.workers == 2
        assert parallel.value_map() == serial.value_map()
        assert [r.key for r in parallel.results] == [
            r.key for r in serial.results]

    def test_retry_once_recovers(self, tmp_path):
        marker = str(tmp_path / "marker")
        spec = SweepSpec(name="s", points=[SweepPoint(
            key=("flaky",), func=f"{HERE}:fail_once",
            kwargs={"marker_path": marker, "x": 1})] + _points([5]))
        outcome = run_sweep(spec, workers=2, chunk_size=1)
        by_key = {result.key: result for result in outcome.results}
        assert by_key[("flaky",)].ok
        assert by_key[("flaky",)].attempts == 2
        assert by_key[(5,)].value == 25

    def test_permanent_failure_does_not_sink_sweep(self):
        spec = SweepSpec(name="s", points=_points([7], "fail_always")
                         + _points(list(range(4))))
        outcome = run_sweep(spec, workers=2, chunk_size=2)
        assert len(outcome.failures) == 1
        assert outcome.failures[0].attempts == 2
        assert sorted(outcome.value_map().values()) == [0, 1, 4, 9]

    def test_warm_workers_reused_across_sweeps(self):
        with WorkerPool(workers=2) as pool:
            first = run_sweep(
                SweepSpec(name="a", points=_points(list(range(6)),
                                                   "record_pid")),
                pool=pool, chunk_size=1)
            second = run_sweep(
                SweepSpec(name="b", points=_points(list(range(6)),
                                                   "record_pid")),
                pool=pool, chunk_size=1)
        pids_first = {value["pid"] for value in first.value_map().values()}
        pids_second = {value["pid"] for value in second.value_map().values()}
        assert pids_first & pids_second, "expected warm workers to be reused"
        assert all(pid != os.getpid() for pid in pids_first)

    def test_worker_telemetry_recorded(self):
        spec = SweepSpec(name="s", points=_points([1, 2]))
        outcome = run_sweep(spec, workers=1)
        for result in outcome.results:
            assert result.worker is not None
            assert result.duration_s >= 0.0


class TestChunking:
    def test_default_chunk_size(self):
        assert default_chunk_size(12, 4) == 1
        assert default_chunk_size(100, 4) == 7
        assert default_chunk_size(1, 8) == 1
        assert default_workers() >= 1


class TestTraceMerging:
    def _spec(self):
        points = [SweepPoint(key=(count,), func=f"{HERE}:emit_records",
                             kwargs={"count": count})
                  for count in (3, 1, 2)]
        return SweepSpec(name="t", points=points, trace_kwarg="trace")

    def test_records_ride_back_with_results(self):
        outcome = run_sweep(self._spec(), serial=True)
        assert outcome.trace_rows() == 6
        assert [sum(header["rows"] for header, _ in result.trace_segments)
                for result in outcome.results] == [3, 1, 2]
        # Rows travel as encoded segment bytes, never pickled records.
        assert all(result.trace_records == [] for result in outcome.results)
        for result in outcome.results:
            for header, payload in result.trace_segments:
                assert isinstance(payload, bytes)
                assert len(payload) == header["rows"] * 8 * (
                    4 + len(header["fields"]))

    def test_serial_and_parallel_bundles_byte_identical(self, tmp_path):
        serial_path = str(tmp_path / "serial.ctb")
        parallel_path = str(tmp_path / "parallel.ctb")
        run_sweep(self._spec(), serial=True, trace_path=serial_path)
        run_sweep(self._spec(), workers=2, chunk_size=1,
                  trace_path=parallel_path)
        with open(serial_path, "rb") as handle:
            serial_bytes = handle.read()
        with open(parallel_path, "rb") as handle:
            parallel_bytes = handle.read()
        assert serial_bytes == parallel_bytes

    def test_dynamic_schemas_shipped_from_workers(self, tmp_path):
        from repro.trace.columnar import ColumnarStore

        path = str(tmp_path / "dyn.ctb")
        spec = SweepSpec(name="d", points=[SweepPoint(
            key=("d",), func=f"{HERE}:emit_dynamic_schema", kwargs={})],
            trace_kwarg="trace")
        outcome = run_sweep(spec, workers=1, trace_path=path)
        outcome.raise_if_failed()
        store = ColumnarStore.load(path)
        assert store.schemas() == ["ibuffer.custom"]
        assert store.records()[0].values == (7, 9)

    def test_dynamic_schemas_deduped_per_chunk(self, tmp_path):
        # Five points all emit the same dynamic schema; a chunk ships its
        # layout once (with the first result), not once per point.
        from repro.trace.columnar import ColumnarStore

        points = [SweepPoint(key=(index,), func=f"{HERE}:emit_dynamic_schema",
                             kwargs={})
                  for index in range(5)]
        spec = SweepSpec(name="dd", points=points, trace_kwarg="trace")
        path = str(tmp_path / "dd.ctb")
        outcome = run_sweep(spec, workers=1, chunk_size=5, trace_path=path)
        outcome.raise_if_failed()
        shipped = [result.trace_schemas for result in outcome.results]
        assert sum(len(schemas) for schemas in shipped) == 1
        assert shipped[0] == (("ibuffer.custom", ("alpha", "beta"), ""),)
        # The layout still reaches the merged bundle despite the dedupe.
        store = ColumnarStore.load(path)
        assert store.schemas() == ["ibuffer.custom"]
        assert store.total_rows() == 5


class TestOutcome:
    def test_value_map_skips_failures(self):
        results = [
            PointResult(key=(1,), label="a", status="ok", value=10),
            PointResult(key=(2,), label="b", status="failed", error="boom"),
        ]
        from repro.sweep import SweepOutcome
        outcome = SweepOutcome(spec_name="s", results=results, workers=0)
        assert outcome.value_map() == {(1,): 10}
        assert len(outcome.failures) == 1


def add(a, b):
    return a + b


class TestWorkerPoolLifecycle:
    def test_warm_start_forks_before_first_submit(self):
        with WorkerPool(workers=2) as pool:
            assert not pool.started
            pids = pool.warm_start()
            assert pool.started
            assert len(pids) == 2
            assert all(pid != os.getpid() for pid in pids)

    def test_submit_call_resolves_by_path(self):
        with WorkerPool(workers=1) as pool:
            future = pool.submit_call(f"{HERE}:add", {"a": 2, "b": 40})
            assert future.result(timeout=30) == 42

    def test_ensure_healthy_on_live_pool(self):
        with WorkerPool(workers=1) as pool:
            pool.warm_start()
            assert pool.ensure_healthy() is True

    def test_ensure_healthy_builds_unstarted_pool(self):
        with WorkerPool(workers=1) as pool:
            assert pool.ensure_healthy() is False
            assert pool.started
            assert pool.ensure_healthy() is True

    def test_ensure_healthy_rebuilds_broken_pool(self):
        with WorkerPool(workers=1) as pool:
            pool.warm_start()
            # Simulate an idle worker dying (OOM kill, say).
            pool._executor.shutdown(wait=False, cancel_futures=True)
            broken = pool._executor
            broken._broken = "worker died"
            assert pool.ensure_healthy() is False
            assert pool._executor is not broken
            future = pool.submit_call(f"{HERE}:add", {"a": 1, "b": 1})
            assert future.result(timeout=30) == 2

    def test_rebuild_then_reuse(self):
        with WorkerPool(workers=1) as pool:
            pool.warm_start()
            pool.rebuild()
            assert not pool.started
            assert pool.submit_call(
                f"{HERE}:add", {"a": 3, "b": 4}).result(timeout=30) == 7
