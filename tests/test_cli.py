"""Tests for the command-line entry point."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig2", "--n", "4", "--num", "6"])
        assert args.command == "run"
        assert args.experiment == "fig2"
        assert args.n == 4

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_flags(self):
        args = build_parser().parse_args(
            ["bench", "--bench-only", "event_throughput", "--no-bench-check"])
        assert args.command == "bench"
        assert args.bench_only == ["event_throughput"]
        assert args.no_bench_check

    def test_run_executor_flag(self):
        args = build_parser().parse_args(["run", "fig2", "--executor", "batch"])
        assert args.executor == "batch"
        assert build_parser().parse_args(["run", "fig2"]).executor == "fast"

    def test_run_executor_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig2", "--executor", "turbo"])

    def test_bench_filter_and_executor_flags(self):
        args = build_parser().parse_args(
            ["bench", "--filter", "ndrange", "--executor", "batch"])
        assert args.filter == "ndrange"
        assert args.executor == "batch"
        defaults = build_parser().parse_args(["bench"])
        assert defaults.filter is None and defaults.executor is None

    def test_bench_executor_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--executor", "turbo"])

    def test_trace_subcommands(self):
        args = build_parser().parse_args(
            ["trace", "export", "x.ctb", "--format", "chrome", "-o", "x.json"])
        assert (args.command, args.trace_command) == ("trace", "export")
        assert args.store == "x.ctb" and args.out == "x.json"

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert "repro-fpga" in capsys.readouterr().out


class TestLegacyShim:
    """The pre-subcommand form keeps working through main()."""

    def test_positional_experiment_still_runs(self, capsys):
        assert main(["fig2", "--n", "4", "--num", "6"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_shim_only_touches_known_experiments(self):
        from repro.cli import _shim_legacy_argv
        assert _shim_legacy_argv(["fig2"]) == ["run", "fig2"]
        assert _shim_legacy_argv(["all"]) == ["run", "all"]
        assert _shim_legacy_argv(["bench"]) == ["bench"]
        assert _shim_legacy_argv(["trace", "info", "x"]) == \
            ["trace", "info", "x"]
        assert _shim_legacy_argv([]) == []


class TestMain:
    def test_fig2_small(self, capsys):
        assert main(["run", "fig2", "--n", "4", "--num", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "info_seq[" in out

    def test_table1_small(self, capsys):
        assert main(["run", "table1", "--depth", "64"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "base" in out

    def test_limitations(self, capsys):
        assert main(["run", "limitations"]) == 0
        assert "stale" in capsys.readouterr().out

    def test_sec52(self, capsys):
        assert main(["run", "sec52"]) == 0
        assert "bound violations" in capsys.readouterr().out

    def test_fig2_batch_executor_output_matches_default(self, capsys):
        assert main(["run", "fig2", "--n", "4", "--num", "6"]) == 0
        default_out = capsys.readouterr().out
        assert main(["run", "fig2", "--n", "4", "--num", "6",
                     "--executor", "batch"]) == 0
        assert capsys.readouterr().out == default_out


class TestBenchSelection:
    """--filter / --bench-only resolution in the perf harness."""

    def test_select_by_exact_name(self):
        from repro.perf.harness import select_benchmarks
        assert select_benchmarks(names=["ndrange_batch"]) == ["ndrange_batch"]

    def test_select_unknown_name_raises(self):
        from repro.perf.harness import select_benchmarks
        with pytest.raises(ValueError, match="unknown benchmark"):
            select_benchmarks(names=["nope"])

    def test_select_by_substring_filter(self):
        from repro.perf.harness import BENCHMARKS, select_benchmarks
        names = select_benchmarks(name_filter="ndrange")
        assert names == [n for n in BENCHMARKS if "ndrange" in n]
        assert "ndrange_batch" in names

    def test_filter_with_no_match_raises(self):
        from repro.perf.harness import select_benchmarks
        with pytest.raises(ValueError, match="no benchmark"):
            select_benchmarks(name_filter="zzz-no-such")

    def test_bench_filter_no_match_exits_nonzero_with_names(self, capsys):
        """CLI pin: a zero-match --filter fails fast, listing the names."""
        from repro.perf.harness import BENCHMARKS

        assert main(["bench", "--filter", "zzz-no-such",
                     "--no-bench-check"]) == 2
        err = capsys.readouterr().err
        assert "matches no benchmark" in err
        for name in BENCHMARKS:
            assert name in err
