"""Tests for the command-line entry point."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig2", "--n", "4", "--num", "6"])
        assert args.experiment == "fig2"
        assert args.n == 4

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_fig2_small(self, capsys):
        assert main(["fig2", "--n", "4", "--num", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "info_seq[" in out

    def test_table1_small(self, capsys):
        assert main(["table1", "--depth", "64"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "base" in out

    def test_limitations(self, capsys):
        assert main(["limitations"]) == 0
        assert "stale" in capsys.readouterr().out

    def test_sec52(self, capsys):
        assert main(["sec52"]) == 0
        assert "bound violations" in capsys.readouterr().out
