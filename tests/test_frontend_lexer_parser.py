"""Unit tests for the OpenCL-C frontend: lexer and parser."""

from __future__ import annotations

import pytest

from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import FrontendError, tokenize
from repro.frontend.parser import parse


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("int x = 0x10; // comment\nwhile")
        kinds = [(t.kind, t.text) for t in tokens]
        assert ("type", "int") in kinds
        assert ("ident", "x") in kinds
        assert ("number", "0x10") in kinds
        assert ("keyword", "while") in kinds
        assert kinds[-1] == ("eof", "")

    def test_comments_stripped(self):
        tokens = tokenize("/* block\ncomment */ x //line\n y")
        assert [t.text for t in tokens[:-1]] == ["x", "y"]

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_two_char_operators(self):
        tokens = tokenize("a += b ++ <= == &&")
        texts = [t.text for t in tokens[:-1]]
        assert texts == ["a", "+=", "b", "++", "<=", "==", "&&"]

    def test_bad_character_rejected(self):
        with pytest.raises(FrontendError):
            tokenize("int x = `;")


class TestChannelDecls:
    def test_scalar_with_depth(self):
        program = parse(
            "channel int time_ch1 __attribute__((depth(0)));")
        declaration = program.channels[0]
        assert declaration.name == "time_ch1"
        assert declaration.count is None
        assert declaration.depth == 0

    def test_array(self):
        program = parse("channel int data_in[10];")
        assert program.channels[0].count == 10
        assert program.channels[0].depth is None


class TestKernelDefs:
    def test_autorun_attribute(self):
        program = parse("""
            __attribute__((autorun))
            __kernel void srv(void) { }
        """)
        assert program.kernels[0].is_autorun

    def test_num_compute_units(self):
        program = parse("""
            __attribute__((num_compute_units(10, 1)))
            __kernel void state_machine(void) { }
        """)
        assert program.kernels[0].num_compute_units == 10

    def test_parameters(self):
        program = parse(
            "__kernel void k(__global int* x, int n) { }")
        parameters = program.kernels[0].parameters
        assert parameters[0].is_global_pointer
        assert not parameters[1].is_global_pointer

    def test_kernel_lookup(self):
        program = parse("__kernel void a(void) { } __kernel void b(void) { }")
        assert program.kernel("b").name == "b"
        with pytest.raises(KeyError):
            program.kernel("c")

    def test_missing_kernel_keyword_rejected(self):
        with pytest.raises(FrontendError):
            parse("void f() { }")


class TestStatements:
    def _body(self, source):
        return parse(f"__kernel void k(void) {{ {source} }}").kernels[0].body

    def test_declaration_with_initializers(self):
        block = self._body("int a = 1, b;")
        declaration = block.statements[0]
        assert isinstance(declaration, ast.Declaration)
        assert declaration.names[0][0] == "a"
        assert declaration.names[1][1] is None

    def test_if_else(self):
        block = self._body("if (a < 1) b = 1; else b = 2;")
        assert isinstance(block.statements[0], ast.If)
        assert block.statements[0].else_branch is not None

    def test_for_loop_parts(self):
        block = self._body("for (int i = 0; i < 10; i++) { }")
        loop = block.statements[0]
        assert isinstance(loop.init, ast.Declaration)
        assert isinstance(loop.condition, ast.Binary)
        assert isinstance(loop.step, ast.IncDec)

    def test_infinite_while(self):
        block = self._body("while (1) { count++; }")
        assert isinstance(block.statements[0], ast.While)

    def test_break_continue_return(self):
        block = self._body("break; continue; return;")
        kinds = [type(s) for s in block.statements]
        assert kinds == [ast.Break, ast.Continue, ast.Return]


class TestExpressions:
    def _expr(self, source):
        block = parse(f"__kernel void k(void) {{ x = {source}; }}"
                      ).kernels[0].body
        return block.statements[0].expr.value

    def test_precedence_mul_over_add(self):
        expr = self._expr("a + b * c")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        expr = self._expr("(a + b) * c")
        assert expr.op == "*"

    def test_subscript_and_call(self):
        expr = self._expr("read_channel_altera(data_in[3])")
        assert isinstance(expr, ast.Call)
        assert isinstance(expr.args[0], ast.Subscript)

    def test_cast(self):
        expr = self._expr("(size_t) p")
        assert isinstance(expr, ast.Cast)
        assert expr.type_name == "size_t"

    def test_address_of(self):
        expr = self._expr("(size_t) &a[0]")
        assert isinstance(expr.operand, ast.AddressOf)

    def test_compound_assignment(self):
        block = parse("__kernel void k(void) { sum += 2; }").kernels[0].body
        assert block.statements[0].expr.op == "+="

    def test_invalid_assignment_target_rejected(self):
        with pytest.raises(FrontendError):
            parse("__kernel void k(void) { 1 = 2; }")

    def test_unexpected_token_reported_with_line(self):
        with pytest.raises(FrontendError, match="line"):
            parse("__kernel void k(void) { x = ; }")


class TestPaperListings:
    """The paper's listings must parse verbatim (modulo OCR whitespace)."""

    LISTING_1 = """
        channel int time_ch1 __attribute__((depth(0)));
        __attribute__((autorun))
        __kernel void timer_srv(void) {
            int count = 0;
            while (1) {
                bool success;
                count++;
                success = write_channel_nb_altera(time_ch1, count);
            }
        }
    """

    LISTING_5 = """
        channel int seq_ch __attribute__((depth(0)));
        __attribute__((autorun))
        __kernel void seq_srv(void) {
            int count = 0;
            while (1) {
                count++;
                write_channel_altera(seq_ch, count);
            }
        }
    """

    LISTING_10_SHAPE = """
        channel int cmd_c[10];
        channel int out_c[10];
        __kernel void read_host(int cmd, int id, __global int* output) {
            for (int i = 0; i < 10; i++) {
                if (i == id) write_channel_altera(cmd_c[i], cmd);
            }
            if (cmd == 3) {
                for (int k = 0; k < 1024; k++) {
                    for (int i = 0; i < 10; i++) {
                        if (i == id) {
                            output[k] = read_channel_altera(out_c[id]);
                        }
                    }
                }
            }
        }
    """

    @pytest.mark.parametrize("listing", [LISTING_1, LISTING_5,
                                         LISTING_10_SHAPE])
    def test_parses(self, listing):
        program = parse(listing)
        assert program.kernels
