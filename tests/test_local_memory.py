"""Unit tests for local (block-RAM) memory."""

from __future__ import annotations

import pytest

from repro.errors import AddressError
from repro.memory.local_memory import LocalMemory, LocalMemoryConfig


class TestValidation:
    def test_zero_size_rejected(self, sim):
        with pytest.raises(AddressError):
            LocalMemory(sim, "m", 0)

    def test_bad_config_rejected(self):
        with pytest.raises(AddressError):
            LocalMemoryConfig(latency=-1)
        with pytest.raises(AddressError):
            LocalMemoryConfig(banks=0)


class TestZeroTimeAccess:
    def test_poke_peek_roundtrip(self, sim):
        memory = LocalMemory(sim, "m", 8)
        memory.poke(3, 42)
        assert memory.peek(3) == 42

    def test_bounds_enforced(self, sim):
        memory = LocalMemory(sim, "m", 4)
        with pytest.raises(AddressError):
            memory.poke(4, 0)
        with pytest.raises(AddressError):
            memory.peek(-1)


class TestTimedAccess:
    def test_load_takes_configured_latency(self, sim):
        memory = LocalMemory(sim, "m", 8, config=LocalMemoryConfig(latency=1))
        memory.poke(0, 5)
        out = []
        def body():
            value = yield memory.load(0)
            out.append((sim.now, value))
        sim.process(body())
        sim.run()
        assert out == [(1, 5)]

    def test_store_commits_at_latency(self, sim):
        memory = LocalMemory(sim, "m", 8)
        def body():
            yield memory.store(2, 9)
        sim.process(body())
        sim.run()
        assert memory.peek(2) == 9

    def test_bank_conflict_adds_delay(self, sim):
        memory = LocalMemory(sim, "m", 8, config=LocalMemoryConfig(banks=2))
        done = []
        def body():
            # Indices 0 and 2 share bank 0 -> second access serializes.
            a = memory.load(0)
            b = memory.load(2)
            a.add_callback(lambda e: done.append(("a", sim.now)))
            b.add_callback(lambda e: done.append(("b", sim.now)))
            yield sim.timeout(0)
        sim.process(body())
        sim.run()
        assert dict(done)["b"] > dict(done)["a"]
        assert memory.bank_conflicts == 1

    def test_different_banks_no_conflict(self, sim):
        memory = LocalMemory(sim, "m", 8, config=LocalMemoryConfig(banks=2))
        done = []
        def body():
            a = memory.load(0)  # bank 0
            b = memory.load(1)  # bank 1
            a.add_callback(lambda e: done.append(sim.now))
            b.add_callback(lambda e: done.append(sim.now))
            yield sim.timeout(0)
        sim.process(body())
        sim.run()
        assert done[0] == done[1]
        assert memory.bank_conflicts == 0

    def test_snapshot_copies(self, sim):
        memory = LocalMemory(sim, "m", 4)
        memory.poke(0, 1)
        snap = memory.snapshot()
        memory.poke(0, 2)
        assert snap[0] == 1
