"""Lazy free-running counters must be observationally identical to the
eager per-cycle processes they replace (ISSUE: behaviour-preserving).

Covers the §3.1 ablation scenarios of ``bench_ablation_limitations`` —
healthy, launch-skewed, and compiler-overridden depth — plus the HDL
counter, the emulator's service discovery, and the counter channel's
read-only/stats/freeze contract.
"""

from __future__ import annotations

import pytest

from repro.channels.channel import CounterRegisterChannel
from repro.core.timestamp import (
    HDLTimestampService,
    PersistentTimestampService,
)
from repro.errors import ChannelUsageError
from repro.experiments import limitations
from repro.hdl.counter import GetTimeModule
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import SingleTaskKernel


class _Probe(SingleTaskKernel):
    """Reads one timestamp site after a delay."""

    def __init__(self, reader, delay, name="probe"):
        super().__init__(name=name)
        self.reader = reader
        self.delay = delay
        self.values = []

    def iteration_space(self, args):
        return [0]

    def body(self, ctx):
        yield ctx.compute(self.delay)
        self.values.append((yield self.reader(ctx)))


def _persistent_read(mode, delay, sites=1, launch_skews=None, site=0):
    fabric = Fabric()
    service = PersistentTimestampService(fabric, sites=sites,
                                         launch_skews=launch_skews, mode=mode)
    probe = _Probe(lambda ctx: service.read_op(ctx, site), delay)
    fabric.run_kernel(probe, {})
    return probe.values[0]


class TestPersistentLazyEqualsEager:
    @pytest.mark.parametrize("delay", [1, 7, 25, 100, 1000])
    def test_healthy_read_identical(self, delay):
        assert _persistent_read("lazy", delay) == _persistent_read("eager", delay)

    @pytest.mark.parametrize("skew", [1, 10, 25])
    def test_skewed_read_identical(self, skew):
        assert (_persistent_read("lazy", 60, launch_skews=[skew])
                == _persistent_read("eager", 60, launch_skews=[skew]))

    def test_read_blocked_until_skewed_start_identical(self):
        # Read site reached before the counter starts: both modes block
        # until the first counter write and observe value 1.
        assert (_persistent_read("lazy", 3, launch_skews=[20])
                == _persistent_read("eager", 3, launch_skews=[20]))

    @pytest.mark.parametrize("delay", [2, 40])
    def test_nonblocking_read_identical(self, delay):
        def run(mode):
            fabric = Fabric()
            service = PersistentTimestampService(fabric, sites=1, mode=mode)
            got = []

            class NB(SingleTaskKernel):
                def iteration_space(self, args):
                    return [0]

                def body(self, ctx):
                    yield ctx.compute(delay)
                    got.append(service.read(ctx, 0))
            fabric.run_kernel(NB(name="nb"), {})
            return got[0]
        assert run("lazy") == run("eager")

    def test_compiled_depth_falls_back_to_eager(self):
        fabric = Fabric()
        service = PersistentTimestampService(fabric, sites=1,
                                             compiled_depth=8, mode="lazy")
        # FIFO staleness needs the real per-cycle writer.
        assert service.mode == "eager"
        assert fabric.service_kernels == []
        assert len(fabric.autorun_engines) == 1

    def test_lazy_mode_runs_no_per_cycle_processes(self):
        fabric = Fabric()
        PersistentTimestampService(fabric, sites=3, mode="lazy")
        assert fabric.autorun_engines == []
        assert len(fabric.service_kernels) == 3
        # Nothing scheduled at all: the counters are free.
        assert fabric.sim.peek() is None


class TestLimitationsScenariosLazyEqualsEager:
    """The full bench_ablation_limitations measurement matrix, both modes."""

    def _measure(self, mode, gap, compiled_depth=None, launch_skews=None):
        fabric = Fabric()
        service = PersistentTimestampService(fabric, sites=2,
                                             compiled_depth=compiled_depth,
                                             launch_skews=launch_skews,
                                             mode=mode)
        probe = limitations._TwoSiteProbe(service.read_op, gap, "probe")
        fabric.advance(compiled_depth or 0)
        fabric.run_kernel(probe, {})
        start, end = probe.pairs[0]
        return end - start

    def test_healthy_scenario(self):
        assert self._measure("lazy", 40) == self._measure("eager", 40) == 40

    def test_skewed_scenario(self):
        lazy = self._measure("lazy", 40, launch_skews=[0, 25])
        eager = self._measure("eager", 40, launch_skews=[0, 25])
        assert lazy == eager
        # Limitation 2 still reproduces under the lazy model.
        assert lazy - 40 == pytest.approx(-25, abs=1)

    def test_stale_depth_scenario_is_eager_either_way(self):
        lazy = self._measure("lazy", 40, compiled_depth=16)
        eager = self._measure("eager", 40, compiled_depth=16)
        assert lazy == eager
        assert lazy < 20    # limitation 1: hopelessly stale

    def test_experiment_module_unchanged(self):
        result = limitations.run(gap_cycles=40, compiled_depth=16,
                                 launch_skew=25)
        assert result.healthy_measured == pytest.approx(40, abs=1)
        assert result.skew_error == pytest.approx(-25, abs=1)
        assert result.hdl_measured == 40


class TestHDLCounterLazyEqualsEager:
    @pytest.mark.parametrize("delay", [0, 5, 17, 300])
    def test_get_time_identical(self, delay):
        def run(eager):
            fabric = Fabric()
            service = HDLTimestampService(fabric)
            service.module.eager = False
            module = GetTimeModule(fabric.sim, eager=eager)
            probe = _Probe(lambda ctx: ctx.call(module, 0), delay)
            fabric.run_kernel(probe, {})
            module.stop()
            return probe.values[0]
        assert run(False) == run(True)

    def test_eager_register_wraps_at_width(self):
        fabric = Fabric()
        module = GetTimeModule(fabric.sim, width_bits=4, eager=True)
        probe = _Probe(lambda ctx: ctx.call(module, 0), delay=20)
        fabric.run_kernel(probe, {})
        module.stop()
        assert probe.values[0] == 20 % 16


class TestCounterRegisterChannel:
    def test_kernel_writes_rejected(self, sim):
        channel = CounterRegisterChannel(sim, "ctr")
        with pytest.raises(ChannelUsageError):
            channel.write_nb(1)
        with pytest.raises(ChannelUsageError):
            channel.write(1)

    def test_read_nb_invalid_before_start(self, sim):
        channel = CounterRegisterChannel(sim, "ctr", start_cycle=10)
        value, valid = channel.read_nb()
        assert not valid and value is None
        assert channel.stats.read_failures == 1

    def test_stats_synthesize_counter_writes(self, sim):
        channel = CounterRegisterChannel(sim, "ctr")
        sim.timeout(49)
        sim.run()
        # The virtual counter wrote once per cycle since cycle 0.
        assert channel.stats.writes == 50
        assert channel.stats.max_occupancy == 1

    def test_freeze_pins_the_last_value(self, sim):
        channel = CounterRegisterChannel(sim, "ctr")
        sim.timeout(30)
        sim.run()
        channel.freeze()
        frozen_value, _ = channel.read_nb()
        sim.timeout(100)
        sim.run()
        value, valid = channel.read_nb()
        assert valid and value == frozen_value

    def test_fabric_stop_autorun_freezes_lazy_counters(self):
        fabric = Fabric()
        service = PersistentTimestampService(fabric, sites=1, mode="lazy")
        fabric.advance(20)
        fabric.stop_autorun()
        frozen, _ = service.channels[0].read_nb()
        fabric.advance(50)
        value, valid = service.channels[0].read_nb()
        assert valid and value == frozen


class TestEmulatorDiscovery:
    def test_lazy_timer_service_discovered(self):
        from repro.host.emulation import Emulator

        fabric = Fabric()
        service = PersistentTimestampService(fabric, sites=1, mode="lazy")
        emulator = Emulator(fabric)
        emulated = emulator._channels[id(service.channels[0])]
        assert emulated.service == "timer"
        assert emulator.stats.warnings == []
