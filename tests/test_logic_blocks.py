"""Unit tests for ibuffer logic function blocks."""

from __future__ import annotations

import pytest

from repro.core.logic_blocks import (
    KIND_BOUND_VIOLATION,
    KIND_INVARIANCE_VIOLATION,
    KIND_MATCH,
    LogicBlock,
    RawRecorderLogic,
    StallMonitorLogic,
    WatchpointLogic,
)
from repro.errors import IBufferError


class TestRawRecorder:
    def test_records_timestamp_and_value(self):
        logic = RawRecorderLogic()
        entries = list(logic.on_data(100, 42))
        assert entries == [{"timestamp": 100, "value": 42}]

    def test_base_class_on_data_abstract(self):
        with pytest.raises(NotImplementedError):
            list(LogicBlock().on_data(0, 0))


class TestStallMonitorLogic:
    def test_slot_tagging(self):
        logic = StallMonitorLogic(slot=3)
        entries = list(logic.on_data(55, 7))
        assert entries == [{"timestamp": 55, "value": 7, "slot": 3}]

    def test_negative_slot_rejected(self):
        with pytest.raises(IBufferError):
            StallMonitorLogic(slot=-1)


class TestWatchpointLogicConfig:
    def test_half_bounds_rejected(self):
        with pytest.raises(IBufferError):
            WatchpointLogic(bound_low=10, bound_high=None)

    def test_empty_bounds_rejected(self):
        with pytest.raises(IBufferError):
            WatchpointLogic(bound_low=10, bound_high=10)

    def test_zero_watch_slots_rejected(self):
        with pytest.raises(IBufferError):
            WatchpointLogic(max_watches=0)

    def test_set_bounds_reconfigures(self):
        logic = WatchpointLogic()
        logic.set_bounds(0, 100)
        assert logic.bound_low == 0
        logic.set_bounds(None, None)
        assert logic.bound_low is None

    def test_set_bounds_validation(self):
        logic = WatchpointLogic()
        with pytest.raises(IBufferError):
            logic.set_bounds(5, None)
        with pytest.raises(IBufferError):
            logic.set_bounds(9, 3)


class TestWatchpointMatching:
    def test_match_on_watched_address(self):
        logic = WatchpointLogic()
        logic.on_aux(0, 0x1000)
        entries = list(logic.on_data(10, (0x1000, 77)))
        assert entries == [{"timestamp": 10, "address": 0x1000, "tag": 77,
                            "kind": KIND_MATCH}]

    def test_non_watched_address_ignored(self):
        logic = WatchpointLogic()
        logic.on_aux(0, 0x1000)
        assert list(logic.on_data(10, (0x2000, 0))) == []

    def test_watch_capacity_limited(self):
        logic = WatchpointLogic(max_watches=2)
        for address in (1, 2, 3):
            logic.on_aux(0, address)
        assert logic.watches == (1, 2)

    def test_duplicate_watch_ignored(self):
        logic = WatchpointLogic(max_watches=2)
        logic.on_aux(0, 5)
        logic.on_aux(0, 5)
        assert logic.watches == (5,)

    def test_malformed_data_rejected(self):
        logic = WatchpointLogic()
        with pytest.raises(IBufferError):
            list(logic.on_data(0, 42))


class TestBoundChecking:
    def test_out_of_bounds_flagged(self):
        logic = WatchpointLogic(bound_low=100, bound_high=200)
        entries = list(logic.on_data(5, (250, 1)))
        assert entries[0]["kind"] == KIND_BOUND_VIOLATION
        assert logic.violations == 1

    def test_in_bounds_not_flagged(self):
        logic = WatchpointLogic(bound_low=100, bound_high=200)
        assert list(logic.on_data(5, (150, 1))) == []

    def test_bound_is_half_open(self):
        logic = WatchpointLogic(bound_low=100, bound_high=200)
        assert list(logic.on_data(5, (100, 1))) == []     # low inclusive
        assert list(logic.on_data(5, (200, 1)))           # high exclusive


class TestInvarianceChecking:
    def test_changed_value_flagged(self):
        logic = WatchpointLogic(invariance=True)
        logic.on_aux(0, 0x10)
        list(logic.on_data(1, (0x10, 5)))
        entries = list(logic.on_data(2, (0x10, 6)))
        kinds = [e["kind"] for e in entries]
        assert KIND_INVARIANCE_VIOLATION in kinds
        assert logic.violations == 1

    def test_same_value_not_flagged(self):
        logic = WatchpointLogic(invariance=True)
        logic.on_aux(0, 0x10)
        list(logic.on_data(1, (0x10, 5)))
        entries = list(logic.on_data(2, (0x10, 5)))
        assert [e["kind"] for e in entries] == [KIND_MATCH]

    def test_first_observation_never_violates(self):
        logic = WatchpointLogic(invariance=True)
        logic.on_aux(0, 0x10)
        entries = list(logic.on_data(1, (0x10, 99)))
        assert [e["kind"] for e in entries] == [KIND_MATCH]

    def test_reset_clears_value_history_keeps_watches(self):
        logic = WatchpointLogic(invariance=True)
        logic.on_aux(0, 0x10)
        list(logic.on_data(1, (0x10, 5)))
        logic.on_reset()
        assert logic.watches == (0x10,)
        entries = list(logic.on_data(2, (0x10, 6)))
        assert [e["kind"] for e in entries] == [KIND_MATCH]  # history gone


class TestResourceProfiles:
    def test_watchpoint_profile_scales_with_comparators(self):
        small = WatchpointLogic(max_watches=1).resource_profile()
        large = WatchpointLogic(max_watches=8,
                                bound_low=0, bound_high=10).resource_profile()
        assert large.logic_ops > small.logic_ops
        assert large.extra_registers > small.extra_registers
