"""Unit tests for the HDL library integration model."""

from __future__ import annotations

import pytest

from repro.errors import HDLError
from repro.hdl.counter import GetTimeModule
from repro.hdl.library import HDLLibrary
from repro.hdl.module import HDLModule, MODES


class TestHDLModule:
    def test_negative_latency_rejected(self, sim):
        with pytest.raises(HDLError):
            HDLModule(sim, "m", latency=-1)

    def test_unknown_mode_rejected(self, sim):
        with pytest.raises(HDLError):
            HDLModule(sim, "m", mode="simulation")

    def test_abstract_methods(self, sim):
        module = HDLModule(sim, "m")
        with pytest.raises(NotImplementedError):
            module.emulate()
        with pytest.raises(NotImplementedError):
            module.synthesize_behavior()

    def test_invocations_counted(self, sim):
        module = GetTimeModule(sim)
        def body():
            result = yield from module.invoke((0,))
            return result
        process = sim.process(body())
        sim.run(until=process)
        assert module.invocations == 1


class TestGetTimeModule:
    def test_synthesis_returns_cycle(self, sim):
        module = GetTimeModule(sim)
        sim.timeout(42)
        sim.run()
        assert module.synthesize_behavior(0) == 42

    def test_emulation_returns_command_plus_one(self, sim):
        module = GetTimeModule(sim)
        assert module.emulate(10) == 11

    def test_counter_wraps_at_width(self, sim):
        module = GetTimeModule(sim, width_bits=4)
        sim.timeout(20)
        sim.run()
        assert module.synthesize_behavior() == 20 % 16

    def test_start_offset_applied(self, sim):
        module = GetTimeModule(sim, start_offset=100)
        assert module.synthesize_behavior() == 100

    def test_zero_width_rejected(self, sim):
        with pytest.raises(HDLError):
            GetTimeModule(sim, width_bits=0)

    def test_resource_profile_has_counter_registers(self, sim):
        profile = GetTimeModule(sim, width_bits=64).resource_profile()
        assert profile.extra_registers == 64
        assert profile.hdl_modules == 1


class TestHDLLibrary:
    def test_register_and_get(self, sim):
        library = HDLLibrary(sim)
        module = library.add_get_time()
        assert library.get("get_time") is module
        assert "get_time" in library

    def test_duplicate_registration_rejected(self, sim):
        library = HDLLibrary(sim)
        library.add_get_time()
        with pytest.raises(HDLError):
            library.add_get_time()

    def test_unknown_lookup_raises(self, sim):
        library = HDLLibrary(sim)
        with pytest.raises(HDLError):
            library.get("ghost")

    def test_set_mode_switches_all_modules(self, sim):
        library = HDLLibrary(sim)
        library.add_get_time("a")
        library.add_get_time("b")
        library.set_mode("emulation")
        assert all(module.mode == "emulation" for module in library.modules())

    def test_set_mode_validates(self, sim):
        library = HDLLibrary(sim)
        library.add_get_time()
        with pytest.raises(HDLError):
            library.set_mode("hardware")
