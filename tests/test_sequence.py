"""Tests for the sequence-number primitive (§3.2, Listing 5)."""

from __future__ import annotations

import pytest

from repro.core.sequence import SequenceService
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import PipelineConfig, SingleTaskKernel


class SeqReader(SingleTaskKernel):
    def __init__(self, service, **kw):
        super().__init__(**kw)
        self.service = service
        self.observed = []

    def iteration_space(self, args):
        return range(args["n"])

    def body(self, ctx):
        value = yield ctx.load("data", ctx.iteration)
        seq = yield self.service.read_op(ctx)
        self.observed.append((seq, ctx.iteration))


class TestSequenceNumbers:
    def _run(self, fabric, n=10):
        service = SequenceService(fabric)
        fabric.memory.allocate("data", n).fill(range(n))
        kernel = SeqReader(service, name="reader")
        fabric.run_kernel(kernel, {"n": n})
        return kernel.observed

    def test_gap_free_from_one(self, fabric):
        observed = self._run(fabric)
        sequences = sorted(seq for seq, _ in observed)
        assert sequences == list(range(1, 11))

    def test_order_reveals_issue_order(self, fabric):
        """In-order pipeline: sequence order == iteration order."""
        observed = self._run(fabric)
        by_seq = [iteration for _, iteration in sorted(observed)]
        assert by_seq == list(range(10))

    def test_counter_does_not_advance_without_reader(self, fabric):
        service = SequenceService(fabric)
        fabric.advance(100)  # no one reads for 100 cycles
        fabric.memory.allocate("data", 1).fill([0])
        kernel = SeqReader(service, name="reader")
        fabric.run_kernel(kernel, {"n": 1})
        # Had the counter free-run, this would be ~100.
        assert kernel.observed[0][0] == 1

    def test_custom_start_value(self, fabric):
        service = SequenceService(fabric, start=50)
        fabric.memory.allocate("data", 2).fill([0, 0])
        kernel = SeqReader(service, name="reader")
        fabric.run_kernel(kernel, {"n": 2})
        assert sorted(seq for seq, _ in kernel.observed) == [51, 52]

    def test_usable_as_profiling_buffer_address(self, fabric):
        """The paper uses seq as the index into info buffers — distinct
        sequence numbers must give collision-free slots."""
        observed = self._run(fabric, n=32)
        slots = [seq for seq, _ in observed]
        assert len(set(slots)) == len(slots)
