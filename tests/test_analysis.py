"""Unit tests for trace post-processing (order, latency, violations)."""

from __future__ import annotations

import pytest

from repro.analysis.latency import (
    LatencyStats,
    histogram,
    latency_values,
    render_latency_table,
    stall_attribution,
    summarize,
)
from repro.analysis.order import (
    OrderRecord,
    access_pattern,
    classify_order,
    order_records,
    render_figure2,
    timestamps_monotonic,
)
from repro.analysis.violations import (
    WatchEvent,
    count_by_kind,
    decode_events,
    render_watch_report,
    value_history,
)
from repro.core.logic_blocks import KIND_BOUND_VIOLATION, KIND_MATCH
from repro.core.stall_monitor import LatencySample
from repro.errors import TraceDecodeError


def _records(pairs):
    return [OrderRecord(seq=index + 1, timestamp=index * 10,
                        outer=k, inner=i)
            for index, (k, i) in enumerate(pairs)]


class TestOrderRecords:
    def test_decoding_from_info_buffers(self):
        info1 = [0, 100, 110]
        info2 = [0, 0, 0]
        info3 = [0, 0, 1]
        records = order_records(info1, info2, info3)
        assert records[0] == OrderRecord(seq=1, timestamp=100, outer=0, inner=0)
        assert len(records) == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceDecodeError):
            order_records([0, 1], [0], [0, 1])

    def test_count_limits_decoding(self):
        records = order_records([0] * 10, [0] * 10, [0] * 10, count=3)
        assert len(records) == 3


class TestClassification:
    def test_program_order(self):
        records = _records([(0, 0), (0, 1), (1, 0), (1, 1)])
        assert classify_order(records) == "program-order"

    def test_interleaved(self):
        records = _records([(0, 0), (1, 0), (0, 1), (1, 1)])
        assert classify_order(records) == "interleaved"

    def test_other(self):
        records = _records([(0, 1), (1, 0), (0, 0), (1, 1)])
        assert classify_order(records) == "other"

    def test_empty_is_other(self):
        assert classify_order([]) == "other"


class TestAccessPattern:
    def test_unit_stride_for_program_order(self):
        records = _records([(0, 0), (0, 1), (0, 2)])
        assert access_pattern(records, num=100) == [0, 1, 2]

    def test_num_stride_for_interleaved(self):
        records = _records([(0, 0), (1, 0), (2, 0)])
        assert access_pattern(records, num=100) == [0, 100, 200]


class TestMonotonicity:
    def test_monotone_true(self):
        assert timestamps_monotonic(_records([(0, 0), (0, 1)]))

    def test_violation_detected(self):
        records = [OrderRecord(1, 50, 0, 0), OrderRecord(2, 40, 0, 1)]
        assert not timestamps_monotonic(records)


class TestFigure2Rendering:
    def test_window_rows(self):
        records = _records([(k, i) for k in range(20) for i in range(5)])
        text = render_figure2(records, start_seq=51, count=4)
        assert "info_seq[ 51]" in text
        assert "Timestamp" in text


class TestLatencyAnalysis:
    def _samples(self, values):
        return [LatencySample(start_cycle=0, end_cycle=value,
                              start_value=0, end_value=0)
                for value in values]

    def test_summary_statistics(self):
        stats = summarize(self._samples([10, 20, 30, 40]))
        assert stats.minimum == 10
        assert stats.maximum == 40
        assert stats.mean == 25
        assert stats.p50 == 25

    def test_single_sample_percentiles(self):
        stats = summarize(self._samples([5]))
        assert stats.p50 == 5
        assert stats.p95 == 5

    def test_empty_rejected(self):
        with pytest.raises(TraceDecodeError):
            summarize([])

    def test_negative_latency_rejected(self):
        bad = [LatencySample(start_cycle=10, end_cycle=5,
                             start_value=0, end_value=0)]
        with pytest.raises(TraceDecodeError):
            latency_values(bad)

    def test_histogram_binning(self):
        bins = histogram(self._samples([1, 2, 17, 18, 40]), bin_width=16)
        assert bins == {0: 2, 16: 2, 32: 1}

    def test_histogram_bad_width(self):
        with pytest.raises(TraceDecodeError):
            histogram(self._samples([1]), bin_width=0)

    def test_stall_attribution(self):
        stall, fraction = stall_attribution(self._samples([50, 50, 100]),
                                            unloaded_latency=50)
        assert stall == 50
        assert fraction == pytest.approx(1 / 3)

    def test_render_table(self):
        text = render_latency_table(summarize(self._samples([10, 20])))
        assert "samples : 2" in text


class TestViolationAnalysis:
    def _entries(self):
        return [
            {"timestamp": 1, "address": 0x10, "tag": 5, "kind": KIND_MATCH},
            {"timestamp": 2, "address": 0x99, "tag": 0,
             "kind": KIND_BOUND_VIOLATION},
            {"timestamp": 3, "address": 0x10, "tag": 6, "kind": KIND_MATCH},
        ]

    def test_decode_events(self):
        events = decode_events(self._entries())
        assert events[0].kind_name == "watch-hit"
        assert events[1].kind_name == "bound-violation"

    def test_value_history_filters_matches(self):
        events = decode_events(self._entries())
        assert value_history(events, address=0x10) == [(1, 5), (3, 6)]

    def test_count_by_kind(self):
        counts = count_by_kind(decode_events(self._entries()))
        assert counts == {"watch-hit": 2, "bound-violation": 1}

    def test_render_report_with_limit(self):
        events = decode_events(self._entries() * 10)
        text = render_watch_report(events, limit=5)
        assert "more events" in text
        assert "summary:" in text

    def test_render_empty(self):
        assert "no events" in render_watch_report([])
