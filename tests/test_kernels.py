"""Tests for the evaluation kernels (functional correctness + profiles)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sequence import SequenceService
from repro.core.timestamp import HDLTimestampService, PersistentTimestampService
from repro.errors import KernelArgumentError
from repro.kernels.dot_product import DotProductKernel
from repro.kernels.matmul import (
    MatMulKernel,
    allocate_matmul_buffers,
    expected_matmul,
)
from repro.kernels.matvec import (
    MatVecNDRange,
    MatVecSingleTask,
    allocate_matvec_buffers,
    expected_matvec,
)
from repro.kernels.pointer_chase import PointerChaseKernel, build_chain
from repro.kernels.vecadd import VecAddKernel
from repro.pipeline.fabric import Fabric


class TestVecAdd:
    def test_correct(self, fabric):
        n = 16
        fabric.memory.allocate("a", n).fill(np.arange(n))
        fabric.memory.allocate("b", n).fill(np.arange(n) * 2)
        c = fabric.memory.allocate("c", n)
        fabric.run_kernel(VecAddKernel(), {"n": n})
        assert np.array_equal(c.snapshot(), np.arange(n) * 3)


class TestDotProduct:
    def _run(self, fabric, mode=None, n=12):
        persistent = hdl = None
        if mode == "persistent":
            persistent = PersistentTimestampService(fabric, sites=2)
        elif mode == "hdl":
            hdl = HDLTimestampService(fabric)
        kernel = DotProductKernel(timestamps=mode, persistent=persistent,
                                  hdl=hdl)
        fabric.memory.allocate("x", n).fill(np.arange(n))
        fabric.memory.allocate("y", n).fill(np.arange(n) + 1)
        z = fabric.memory.allocate("z", 1)
        fabric.run_kernel(kernel, {"n": n})
        expected = int((np.arange(n) * (np.arange(n) + 1)).sum())
        return kernel, int(z.read(0)), expected

    def test_uninstrumented_correct(self, fabric):
        _, result, expected = self._run(fabric)
        assert result == expected

    def test_persistent_timestamps_measure_positive_latency(self, fabric):
        kernel, result, expected = self._run(fabric, "persistent")
        assert result == expected
        start, end = kernel.measurements[0]
        assert end > start

    def test_hdl_timestamps_measure_positive_latency(self, fabric):
        kernel, result, expected = self._run(fabric, "hdl")
        start, end = kernel.measurements[0]
        assert end > start

    def test_missing_service_rejected(self):
        with pytest.raises(KernelArgumentError):
            DotProductKernel(timestamps="hdl")
        with pytest.raises(KernelArgumentError):
            DotProductKernel(timestamps="persistent")
        with pytest.raises(KernelArgumentError):
            DotProductKernel(timestamps="sundial")


class TestMatVec:
    @pytest.mark.parametrize("cls", [MatVecSingleTask, MatVecNDRange])
    def test_uninstrumented_correct(self, cls):
        fabric = Fabric()
        N, num = 5, 8
        allocate_matvec_buffers(fabric, N, num, instrumented=False)
        fabric.run_kernel(cls(), {"N": N, "num": num})
        z = fabric.memory.buffer("z").snapshot()
        assert np.array_equal(z, expected_matvec(N, num))

    @pytest.mark.parametrize("cls", [MatVecSingleTask, MatVecNDRange])
    def test_instrumented_still_correct(self, cls):
        """Instrumentation must not perturb results (the non-intrusiveness
        requirement of §4)."""
        fabric = Fabric()
        N, num, probe = 4, 6, 3
        seq = SequenceService(fabric)
        ts = PersistentTimestampService(fabric, sites=1)
        allocate_matvec_buffers(fabric, N, num, probe_i=probe)
        fabric.run_kernel(cls(seq, ts, probe_i=probe), {"N": N, "num": num})
        z = fabric.memory.buffer("z").snapshot()
        assert np.array_equal(z, expected_matvec(N, num))

    def test_half_instrumentation_rejected(self, fabric):
        seq = SequenceService(fabric)
        with pytest.raises(KernelArgumentError):
            MatVecSingleTask(sequence=seq, timestamps=None)

    def test_info_buffers_fully_populated(self, fabric):
        N, num, probe = 4, 6, 3
        seq = SequenceService(fabric)
        ts = PersistentTimestampService(fabric, sites=1)
        buffers = allocate_matvec_buffers(fabric, N, num, probe_i=probe)
        fabric.run_kernel(MatVecSingleTask(seq, ts, probe_i=probe),
                          {"N": N, "num": num})
        info2 = buffers["info2"].snapshot()
        info3 = buffers["info3"].snapshot()
        pairs = sorted((int(info2[s]), int(info3[s]))
                       for s in range(1, N * probe + 1))
        assert pairs == [(k, i) for k in range(N) for i in range(probe)]


class TestMatMul:
    def test_uninstrumented_correct(self, fabric):
        buffers = allocate_matmul_buffers(fabric, 3, 5, 4)
        fabric.run_kernel(MatMulKernel(), {"rows_a": 3, "col_a": 5,
                                           "col_b": 4})
        result = buffers["data_c"].snapshot().reshape(3, 4)
        assert np.array_equal(result, expected_matmul(3, 5, 4))

    def test_custom_inputs(self, fabric):
        a = np.ones(6, dtype=np.int64)
        b = np.full(6, 2, dtype=np.int64)
        allocate_matmul_buffers(fabric, 2, 3, 2, a=a, b=b)
        fabric.run_kernel(MatMulKernel(), {"rows_a": 2, "col_a": 3,
                                           "col_b": 2})
        result = fabric.memory.buffer("data_c").snapshot()
        assert list(result) == [6, 6, 6, 6]

    def test_profile_grows_with_instrumentation(self, fabric):
        from repro.core.stall_monitor import StallMonitor
        base = MatMulKernel().resource_profile()
        monitor = StallMonitor(fabric, sites=2, depth=8)
        instrumented = MatMulKernel(stall_monitor=monitor).resource_profile()
        assert instrumented.channel_endpoints > base.channel_endpoints


class TestPointerChase:
    def test_chain_traversal_correct(self, fabric):
        size, steps = 16, 5
        chain = build_chain(size, stride=7)
        fabric.memory.allocate("ptr", size).fill(chain)
        out = fabric.memory.allocate("out", 1)
        fabric.run_kernel(PointerChaseKernel(), {"start": 0, "steps": steps})
        expected = 0
        for _ in range(steps):
            expected = chain[expected]
        assert out.read(0) == expected

    def test_serialized_execution_time_scales_with_steps(self):
        times = []
        for steps in (4, 8):
            fabric = Fabric()
            fabric.memory.allocate("ptr", 64).fill(build_chain(64))
            fabric.memory.allocate("out", 1)
            engine = fabric.run_kernel(PointerChaseKernel(),
                                       {"start": 0, "steps": steps})
            times.append(engine.stats.total_cycles)
        assert times[1] > times[0] * 1.5  # near-linear: no pipelining possible

    def test_hdl_stamps_reveal_per_step_latency(self, fabric):
        hdl = HDLTimestampService(fabric)
        kernel = PointerChaseKernel(timestamps="hdl", hdl=hdl)
        fabric.memory.allocate("ptr", 32).fill(build_chain(32))
        fabric.memory.allocate("out", 1)
        fabric.run_kernel(kernel, {"start": 0, "steps": 6})
        gaps = [b - a for a, b in zip(kernel.step_stamps,
                                      kernel.step_stamps[1:])]
        assert all(gap > 0 for gap in gaps)

    def test_chain_generators(self):
        stride_chain = build_chain(10, stride=3)
        assert sorted(stride_chain) == list(range(10))
        random_chain = build_chain(10, seed=7)
        assert sorted(random_chain) == list(range(10))
        # A permutation cycle visits every element exactly once.
        seen, index = set(), 0
        for _ in range(10):
            index = random_chain[index]
            seen.add(int(index))
        assert len(seen) == 10

    def test_chain_validation(self):
        with pytest.raises(KernelArgumentError):
            build_chain(1)
        with pytest.raises(KernelArgumentError):
            build_chain(10, stride=5)  # not coprime
