"""Integration tests for §5.2 smart watchpoints."""

from __future__ import annotations

import pytest

from repro.core.watchpoint import SmartWatchpoint, caller_site_profile
from repro.errors import IBufferError
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import SingleTaskKernel


class MonitoredWriter(SingleTaskKernel):
    """Writes a sequence of values to data[target], all monitored."""

    def __init__(self, watchpoint, values, target=0, **kw):
        super().__init__(**kw)
        self.watchpoint = watchpoint
        self.values = values
        self.target = target

    def iteration_space(self, args):
        return range(len(self.values))

    def body(self, ctx):
        i = ctx.iteration
        memory = ctx._instance.fabric.memory
        data = memory.buffer("data")
        if i == 0:
            self.watchpoint.add_watch(ctx, 0, data.address_of(self.target))
        yield ctx.store("data", self.target, self.values[i])
        self.watchpoint.monitor_address(ctx, 0, data.address_of(self.target),
                                        self.values[i])


class TestValidation:
    def test_zero_units_rejected(self, fabric):
        with pytest.raises(IBufferError):
            SmartWatchpoint(fabric, units=0)

    def test_unit_bounds_checked_kernel_side(self, fabric):
        watchpoint = SmartWatchpoint(fabric, units=1, depth=8)
        fabric.memory.allocate("data", 4)
        class Bad(SingleTaskKernel):
            def iteration_space(self, args):
                return [0]
            def body(self, ctx):
                self.args  # touch ctx to be a generator
                watchpoint.monitor_address(ctx, 3, 0, 0)
                yield ctx.compute(1)
        from repro.errors import ProcessError
        with pytest.raises(ProcessError):
            fabric.run_kernel(Bad(name="bad"), {})

    def test_set_bounds_unit_range_checked(self, fabric):
        watchpoint = SmartWatchpoint(fabric, units=1, depth=8)
        with pytest.raises(IBufferError):
            watchpoint.set_bounds(0, 10, unit=4)


class TestWatchHistory:
    def test_value_history_recorded(self, fabric):
        watchpoint = SmartWatchpoint(fabric, units=1, depth=32)
        fabric.memory.allocate("data", 4)
        kernel = MonitoredWriter(watchpoint, [5, 6, 7], name="writer")
        fabric.run_kernel(kernel, {})
        matches = watchpoint.matches(0)
        assert [m["tag"] for m in matches] == [5, 6, 7]
        stamps = [m["timestamp"] for m in matches]
        assert stamps == sorted(stamps)

    def test_unwatched_address_not_recorded(self, fabric):
        watchpoint = SmartWatchpoint(fabric, units=1, depth=32)
        fabric.memory.allocate("data", 4)
        class NoWatch(SingleTaskKernel):
            def iteration_space(self, args):
                return range(3)
            def body(self, ctx):
                data = ctx._instance.fabric.memory.buffer("data")
                # Monitor address of element 1; nothing watches it.
                watchpoint.monitor_address(ctx, 0, data.address_of(1), 9)
                yield ctx.compute(1)
        fabric.run_kernel(NoWatch(name="nw"), {})
        assert watchpoint.matches(0) == []


class TestBoundChecking:
    def test_violations_outside_buffer_extent(self, fabric):
        watchpoint = SmartWatchpoint(fabric, units=1, depth=32)
        data = fabric.memory.allocate("data", 4)
        watchpoint.set_bounds_to_buffer("data")
        class OffByOne(SingleTaskKernel):
            def iteration_space(self, args):
                return range(6)
            def body(self, ctx):
                address = data.base_address + ctx.iteration * data.itemsize
                watchpoint.monitor_address(ctx, 0, address, 0)
                yield ctx.compute(1)
        fabric.run_kernel(OffByOne(name="obo"), {})
        violations = watchpoint.bound_violations(0)
        assert len(violations) == 2  # indices 4, 5 are past the end
        assert violations[0]["address"] == data.end_address

    def test_bounds_disabled_by_default(self, fabric):
        watchpoint = SmartWatchpoint(fabric, units=1, depth=8)
        fabric.memory.allocate("data", 2)
        class Wild(SingleTaskKernel):
            def iteration_space(self, args):
                return [0]
            def body(self, ctx):
                watchpoint.monitor_address(ctx, 0, 0xdead_beef, 0)
                yield ctx.compute(1)
        fabric.run_kernel(Wild(name="wild"), {})
        assert watchpoint.bound_violations(0) == []


class TestInvariance:
    def test_change_detected(self, fabric):
        watchpoint = SmartWatchpoint(fabric, units=1, depth=32,
                                     invariance=True)
        fabric.memory.allocate("data", 2)
        kernel = MonitoredWriter(watchpoint, [5, 5, 9, 9], name="writer")
        fabric.run_kernel(kernel, {})
        violations = watchpoint.invariance_violations(0)
        assert len(violations) == 1
        assert violations[0]["tag"] == 9

    def test_constant_value_clean(self, fabric):
        watchpoint = SmartWatchpoint(fabric, units=1, depth=32,
                                     invariance=True)
        fabric.memory.allocate("data", 2)
        kernel = MonitoredWriter(watchpoint, [5, 5, 5], name="writer")
        fabric.run_kernel(kernel, {})
        assert watchpoint.invariance_violations(0) == []


class TestProfiles:
    def test_caller_profile_counts_both_channels(self):
        profile = caller_site_profile(monitor_sites=2, watch_sites=1)
        assert profile.channel_endpoints == 3

    def test_kernels_listed_for_design(self, fabric):
        watchpoint = SmartWatchpoint(fabric, units=1, depth=8)
        assert len(watchpoint.kernels()) == 2
