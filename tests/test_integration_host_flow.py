"""End-to-end integration through the host API: the paper's workflow as a
user would actually drive it — context, queue, source compilation,
instrumentation, readout, and analysis in one flow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.order import classify_order, order_records
from repro.core.sequence import SequenceService
from repro.core.stall_monitor import StallMonitor
from repro.core.timestamp import PersistentTimestampService
from repro.host import CommandQueue, Context, Program
from repro.kernels.matvec import MatVecNDRange, expected_matvec


class TestFigure2ThroughHostAPI:
    def test_full_flow(self):
        context = Context()
        queue = CommandQueue(context)
        n_rows, num, probe = 6, 12, 4

        # Device programming: instrumentation services start as autorun.
        sequence = SequenceService(context.fabric)
        timestamps = PersistentTimestampService(context.fabric, sites=1)
        kernel = MatVecNDRange(sequence, timestamps, probe_i=probe)
        program = Program(context, [kernel], name="fig2_image")

        # Buffers through the host API.
        context.create_buffer("x", n_rows * num).write(
            np.arange(n_rows * num))
        context.create_buffer("y", num).write(np.arange(num))
        context.create_buffer("z", n_rows)
        for name in ("info1", "info2", "info3"):
            context.create_buffer(name, n_rows * probe + 1)

        event = queue.enqueue_kernel(program.kernel("matvec_ndrange"),
                                     {"N": n_rows, "num": num})
        queue.finish()

        # Results + profiling info through the host API.
        assert event.profiling_info()["duration"] > 0
        assert np.array_equal(context.buffer("z").read(),
                              expected_matvec(n_rows, num))
        records = order_records(context.buffer("info1").read(),
                                context.buffer("info2").read(),
                                context.buffer("info3").read(),
                                count=n_rows * probe)
        assert classify_order(records) == "interleaved"

    def test_source_compiled_kernel_with_monitor_via_queue(self):
        """Compile from source, instrument a separate native kernel, and
        interleave both launches on one in-order queue."""
        context = Context()
        queue = CommandQueue(context)

        program = context.compile("""
            __kernel void scale(__global int* data, int n) {
                for (int i = 0; i < n; i++) { data[i] = data[i] * 2; }
            }
        """)
        context.create_buffer("data", 8).write(np.arange(8))

        monitor = StallMonitor(context.fabric, sites=2, depth=64)
        from repro.kernels.matmul import MatMulKernel, allocate_matmul_buffers
        matmul = MatMulKernel(stall_monitor=monitor)
        allocate_matmul_buffers(context.fabric, 2, 4, 2)

        queue.enqueue_kernel(program.kernel("scale"), {"data": "data", "n": 8})
        queue.enqueue_kernel(matmul, {"rows_a": 2, "col_a": 4, "col_b": 2})
        queue.finish()

        assert list(context.buffer("data").read()) == [2 * i for i in range(8)]
        assert len(monitor.latencies(0, 1)) == 2 * 4 * 2
