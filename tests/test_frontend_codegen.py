"""Unit tests for the closure-codegen frontend backend and program cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend import (
    DEFAULT_FRONTEND,
    FRONTENDS,
    FrontendError,
    compile_source,
    program_cache_clear,
    program_cache_info,
)
from repro.pipeline.fabric import Fabric

VECADD = """
    __kernel void vecadd(__global int* a, __global int* b,
                         __global int* c, int n) {
        for (int i = 0; i < n; i++) {
            c[i] = a[i] + b[i];
        }
    }
"""


def _run_vecadd(fabric, **compile_kwargs):
    program = compile_source(fabric, VECADD, **compile_kwargs)
    n = 8
    fabric.memory.allocate("A", n).fill(np.arange(n))
    fabric.memory.allocate("B", n).fill(np.arange(n) * 10)
    fabric.memory.allocate("C", n)
    fabric.run_kernel(program.kernel("vecadd"),
                      {"a": "A", "b": "B", "c": "C", "n": n})
    return program, fabric.memory.buffer("C").snapshot()


class TestFrontendKnob:
    def test_default_is_codegen(self, fabric):
        program, out = _run_vecadd(fabric)
        assert DEFAULT_FRONTEND == "codegen"
        assert program.frontend == "codegen"
        assert program.kernel("vecadd").frontend == "codegen"
        assert program.kernel("vecadd")._compiled_body is not None
        assert list(out) == [i * 11 for i in range(8)]

    def test_reference_backend_selectable(self, fabric):
        program, out = _run_vecadd(fabric, frontend="reference")
        assert program.frontend == "reference"
        assert program.kernel("vecadd")._compiled_body is None
        assert list(out) == [i * 11 for i in range(8)]

    def test_unknown_frontend_rejected(self, fabric):
        with pytest.raises(FrontendError, match="unknown frontend"):
            compile_source(fabric, VECADD, frontend="jit")

    def test_frontends_tuple(self):
        assert FRONTENDS == ("codegen", "reference")

    def test_backends_agree_on_sim_time(self):
        results = {}
        for frontend in FRONTENDS:
            fabric = Fabric()
            _run_vecadd(fabric, frontend=frontend)
            results[frontend] = fabric.sim.now
        assert results["codegen"] == results["reference"]


class TestProgramCache:
    def setup_method(self):
        program_cache_clear()

    def teardown_method(self):
        program_cache_clear()

    def test_second_compile_hits(self):
        compile_source(Fabric(), VECADD)
        info = program_cache_info()
        assert (info["hits"], info["misses"]) == (0, 1)
        compile_source(Fabric(), VECADD)
        info = program_cache_info()
        assert (info["hits"], info["misses"]) == (1, 1)
        assert info["size"] == 1

    def test_cached_image_still_correct(self):
        _, first = _run_vecadd(Fabric())
        _, second = _run_vecadd(Fabric())
        assert list(first) == list(second)
        assert program_cache_info()["hits"] == 1

    def test_defines_partition_the_cache(self):
        compile_source(Fabric(), VECADD, defines={"N": 4})
        compile_source(Fabric(), VECADD, defines={"N": 8})
        compile_source(Fabric(), VECADD, defines={"N": 4})
        info = program_cache_info()
        assert (info["hits"], info["misses"]) == (1, 2)

    def test_frontend_partitions_the_cache(self):
        compile_source(Fabric(), VECADD, frontend="codegen")
        compile_source(Fabric(), VECADD, frontend="reference")
        info = program_cache_info()
        assert (info["hits"], info["misses"]) == (0, 2)

    def test_clear_resets_counters(self):
        compile_source(Fabric(), VECADD)
        program_cache_clear()
        info = program_cache_info()
        assert (info["hits"], info["misses"], info["size"]) == (0, 0, 0)

    def test_info_reports_maxsize(self):
        assert program_cache_info()["maxsize"] >= 1

    def test_eviction_counter_tracks_lru_drops(self, monkeypatch):
        from repro.frontend import compiler
        monkeypatch.setattr(compiler, "_PROGRAM_CACHE_MAXSIZE", 2)
        for tag in range(3):
            compile_source(Fabric(), VECADD + f"// v{tag}")
        info = program_cache_info()
        assert info["evictions"] == 1
        assert info["size"] == 2
        # The oldest entry was dropped: recompiling it misses again.
        compile_source(Fabric(), VECADD + "// v0")
        assert program_cache_info()["misses"] == 4

    def test_concurrent_compiles_cost_one_miss(self):
        """N threads compiling one new source -> exactly one miss."""
        import threading

        source = VECADD + "// concurrent-probe"
        barrier = threading.Barrier(8)

        def compile_one():
            barrier.wait(timeout=30)
            compile_source(Fabric(), source)

        threads = [threading.Thread(target=compile_one) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        info = program_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 7
        assert info["size"] == 1


class TestCodegenLowering:
    def setup_method(self):
        program_cache_clear()

    def test_defines_fold_out_of_the_frame(self, fabric):
        source = """
            #define WIDTH 16
            __kernel void k(__global int* out) {
                out[0] = WIDTH * 2;
            }
        """
        program = compile_source(fabric, source)
        body = program.kernel("k")._compiled_body
        # The folded macro needs no binding slot; the buffer param does.
        assert [name for name, _ in body.binding_slots] == ["out"]
        fabric.memory.allocate("OUT", 4)
        fabric.run_kernel(program.kernel("k"), {"out": "OUT"})
        assert fabric.memory.buffer("OUT").read(0) == 32

    def test_runtime_defines_fold_too(self, fabric):
        program = compile_source(fabric, """
            __kernel void k(__global int* out) {
                out[0] = LIMIT + 1;
            }
        """, defines={"LIMIT": 41})
        body = program.kernel("k")._compiled_body
        assert [name for name, _ in body.binding_slots] == ["out"]
        fabric.memory.allocate("OUT", 1)
        fabric.run_kernel(program.kernel("k"), {"out": "OUT"})
        assert fabric.memory.buffer("OUT").read(0) == 42

    def test_mutated_define_gets_a_slot(self, fabric):
        program = compile_source(fabric, """
            __kernel void k(__global int* out) {
                LIMIT = LIMIT + 1;
                out[0] = LIMIT;
            }
        """, defines={"LIMIT": 41})
        body = program.kernel("k")._compiled_body
        assert [name for name, _ in body.binding_slots] == ["LIMIT", "out"]
        fabric.memory.allocate("OUT", 1)
        fabric.run_kernel(program.kernel("k"), {"out": "OUT"})
        assert fabric.memory.buffer("OUT").read(0) == 42

    def test_nb_channel_loopback_within_kernel(self, fabric):
        source = """
            channel int loopback __attribute__((depth(4)));
            __kernel void k(__global int* out) {
                int ok = 0;
                write_channel_nb_altera(loopback, 7);
                int v = read_channel_nb_altera(loopback, &ok);
                out[0] = v;
                out[1] = ok;
                int miss = read_channel_nb_altera(loopback, &ok);
                out[2] = miss;
                out[3] = ok;
            }
        """
        program = compile_source(fabric, source)
        fabric.memory.allocate("OUT", 4)
        fabric.run_kernel(program.kernel("k"), {"out": "OUT"})
        out = fabric.memory.buffer("OUT").snapshot()
        assert list(out) == [7, 1, 0, 0]

    def test_undefined_read_still_raises(self, fabric):
        program = compile_source(fabric, """
            __kernel void k(__global int* out) {
                out[0] = nowhere;
            }
        """)
        from repro.errors import ProcessError
        fabric.memory.allocate("OUT", 1)
        with pytest.raises(ProcessError, match="undefined identifier"):
            fabric.run_kernel(program.kernel("k"), {"out": "OUT"})

    def test_conditional_declaration_first_use_raises(self, fabric):
        # The _UNDEF hazard check: the declaration never executed, so the
        # read fails exactly like the reference backend's scope lookup.
        program = compile_source(fabric, """
            __kernel void k(__global int* out, int n) {
                if (n > 100) { } else { }
                switch (n) {
                    case 999: int ghost = 1;
                    case 0: out[0] = ghost; break;
                }
            }
        """)
        from repro.errors import ProcessError
        fabric.memory.allocate("OUT", 1)
        with pytest.raises(ProcessError, match="undefined identifier 'ghost'"):
            fabric.run_kernel(program.kernel("k"), {"out": "OUT", "n": 0})
