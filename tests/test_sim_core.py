"""Unit tests for the discrete-event simulation core."""

from __future__ import annotations

import pytest

from repro.errors import ProcessError, SimulationError
from repro.sim.core import (
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    Event,
    Interrupt,
    Simulator,
    Timeout,
    at_each_cycle,
)


class TestEvent:
    def test_starts_pending(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_value_unavailable_before_trigger(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            _ = event.value
        with pytest.raises(SimulationError):
            _ = event.ok

    def test_succeed_sets_value(self, sim):
        event = sim.event().succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_double_trigger_rejected(self, sim):
        event = sim.event().succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_fail_carries_exception(self, sim):
        boom = ValueError("boom")
        event = sim.event().fail(boom)
        event._defused = True
        sim.run()
        assert not event.ok
        assert event.value is boom

    def test_callback_after_processing_runs_immediately(self, sim):
        event = sim.event().succeed(7)
        sim.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]


class TestTimeout:
    def test_fires_at_delay(self, sim):
        timeout = sim.timeout(5, value="v")
        sim.run()
        assert sim.now == 5
        assert timeout.value == "v"

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_zero_delay_allowed(self, sim):
        sim.timeout(0)
        sim.run()
        assert sim.now == 0


class TestProcess:
    def test_process_runs_and_returns(self, sim):
        def body():
            yield sim.timeout(3)
            return "done"
        process = sim.process(body())
        result = sim.run(until=process)
        assert result == "done"
        assert sim.now == 3

    def test_non_generator_rejected(self, sim):
        with pytest.raises(ProcessError):
            sim.process(lambda: None)

    def test_sequential_timeouts_accumulate(self, sim):
        log = []
        def body():
            yield sim.timeout(2)
            log.append(sim.now)
            yield sim.timeout(3)
            log.append(sim.now)
        sim.process(body())
        sim.run()
        assert log == [2, 5]

    def test_yielding_non_event_crashes_process(self, sim):
        def body():
            yield 42
        sim.process(body())
        with pytest.raises(ProcessError):
            sim.run()

    def test_exception_in_process_propagates(self, sim):
        def body():
            yield sim.timeout(1)
            raise RuntimeError("kernel bug")
        sim.process(body())
        with pytest.raises(ProcessError, match="kernel bug"):
            sim.run()

    def test_wait_on_event_receives_value(self, sim):
        event = sim.event()
        got = []
        def waiter():
            value = yield event
            got.append(value)
        def trigger():
            yield sim.timeout(4)
            event.succeed("payload")
        sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert got == ["payload"]

    def test_wait_on_already_processed_event(self, sim):
        event = sim.event().succeed("x")
        sim.run()
        got = []
        def waiter():
            value = yield event
            got.append((sim.now, value))
        sim.process(waiter())
        sim.run()
        assert got == [(0, "x")]

    def test_failed_event_throws_into_waiter(self, sim):
        event = sim.event()
        caught = []
        def waiter():
            try:
                yield event
            except ValueError as exc:
                caught.append(str(exc))
        def trigger():
            yield sim.timeout(1)
            event.fail(ValueError("broken"))
        sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert caught == ["broken"]

    def test_interrupt_reaches_process(self, sim):
        seen = []
        def body():
            try:
                yield sim.timeout(100)
            except Interrupt as interrupt:
                seen.append((sim.now, interrupt.cause))
        process = sim.process(body())
        def killer():
            yield sim.timeout(10)
            process.interrupt("stop now")
        sim.process(killer())
        sim.run()
        assert seen == [(10, "stop now")]

    def test_interrupt_finished_process_rejected(self, sim):
        def body():
            yield sim.timeout(1)
        process = sim.process(body())
        sim.run()
        with pytest.raises(ProcessError):
            process.interrupt()

    def test_is_alive_lifecycle(self, sim):
        def body():
            yield sim.timeout(5)
        process = sim.process(body())
        assert process.is_alive
        sim.run()
        assert not process.is_alive


class TestSimulatorRun:
    def test_run_until_time_stops_before_later_events(self, sim):
        fired = []
        def body():
            yield sim.timeout(10)
            fired.append(sim.now)
        sim.process(body())
        sim.run(until=5)
        assert fired == []
        assert sim.now == 5
        sim.run(until=20)
        assert fired == [10]

    def test_run_until_past_time_rejected(self, sim):
        sim.timeout(1)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=0)

    def test_run_until_event_returns_its_value(self, sim):
        def body():
            yield sim.timeout(2)
            return 99
        process = sim.process(body())
        assert sim.run(until=process) == 99

    def test_step_on_empty_queue_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_peek_reports_next_event_time(self, sim):
        assert sim.peek() is None
        sim.timeout(7)
        assert sim.peek() == 7

    def test_run_all_guards_against_livelock(self, sim):
        def forever():
            while True:
                yield sim.timeout(1)
        sim.process(forever())
        with pytest.raises(SimulationError, match="livelock"):
            sim.run_all(max_cycles=100)


class TestPriorities:
    def test_urgent_runs_before_normal_same_cycle(self, sim):
        order = []
        def late():
            yield sim.timeout(5, priority=PRIORITY_NORMAL)
            order.append("normal")
        def early():
            yield sim.timeout(5, priority=PRIORITY_URGENT)
            order.append("urgent")
        sim.process(late())
        sim.process(early())
        sim.run()
        assert order == ["urgent", "normal"]

    def test_late_runs_after_normal_same_cycle(self, sim):
        order = []
        def monitor():
            yield sim.timeout(3, priority=PRIORITY_LATE)
            order.append("late")
        def work():
            yield sim.timeout(3, priority=PRIORITY_NORMAL)
            order.append("normal")
        sim.process(monitor())
        sim.process(work())
        sim.run()
        assert order == ["normal", "late"]

    def test_fifo_within_same_priority(self, sim):
        order = []
        for tag in ("a", "b", "c"):
            def body(t=tag):
                yield sim.timeout(1)
                order.append(t)
            sim.process(body())
        sim.run()
        assert order == ["a", "b", "c"]


class TestAtEachCycle:
    def test_runs_every_cycle_until_true(self, sim):
        cycles = []
        def body(cycle):
            cycles.append(cycle)
            return cycle >= 3
        at_each_cycle(sim, body)
        sim.run()
        assert cycles == [0, 1, 2, 3]
