"""Property-based tests (hypothesis) for channels and stores."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.channels.channel import Channel
from repro.sim.core import Simulator
from repro.sim.resources import Store

#: Interleaved operation scripts: True = write (with the next value),
#: False = read.
_ops = st.lists(st.booleans(), min_size=1, max_size=60)


class TestFifoChannelProperties:
    @given(ops=_ops, depth=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_fifo_matches_reference_deque(self, ops, depth):
        """Non-blocking op sequences behave exactly like a bounded deque."""
        from collections import deque

        sim = Simulator()
        channel = Channel(sim, "c", depth=depth)
        model = deque()
        counter = 0
        for is_write in ops:
            if is_write:
                counter += 1
                ok = channel.write_nb(counter)
                assert ok == (len(model) < depth)
                if ok:
                    model.append(counter)
            else:
                value, ok = channel.read_nb()
                assert ok == bool(model)
                if ok:
                    assert value == model.popleft()
        assert channel.occupancy == len(model)

    @given(values=st.lists(st.integers(), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_drain_preserves_order_and_content(self, values):
        sim = Simulator()
        channel = Channel(sim, "c", depth=len(values))
        for value in values:
            assert channel.write_nb(value)
        drained = [channel.read_nb()[0] for _ in values]
        assert drained == values


class TestRegisterChannelProperties:
    @given(values=st.lists(st.integers(), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_register_always_holds_last_write(self, values):
        sim = Simulator()
        channel = Channel(sim, "c", depth=0)
        for value in values:
            channel.write_nb(value)
            assert channel.read_nb() == (value, True)
        # Still the last value, any number of reads later.
        for _ in range(3):
            assert channel.read_nb() == (values[-1], True)


class TestStoreProperties:
    @given(ops=_ops, capacity=st.integers(min_value=0, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_level_never_exceeds_capacity(self, ops, capacity):
        sim = Simulator()
        store = Store(sim, capacity=capacity)
        counter = 0
        for is_put in ops:
            if is_put:
                counter += 1
                store.try_put(counter)
            else:
                store.try_get()
            assert store.level <= capacity

    @given(values=st.lists(st.integers(), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_nothing_lost_nothing_invented(self, values):
        sim = Simulator()
        store = Store(sim, capacity=len(values))
        accepted = [value for value in values if store.try_put(value)]
        drained = []
        while True:
            value, ok = store.try_get()
            if not ok:
                break
            drained.append(value)
        assert drained == accepted
