"""Tests for OpenCL work-group barriers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import KernelBuildError, ProcessError
from repro.memory.local_memory import LocalMemory
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import NDRangeKernel, PipelineConfig, SingleTaskKernel


class ReverseInGroup(NDRangeKernel):
    """Classic barrier kernel: stage into local memory, sync, read back
    reversed within the work-group."""

    def __init__(self, local_size, **kw):
        super().__init__(name="reverse", local_size=local_size, **kw)

    def global_size(self, args):
        return args["n"]

    def create_locals(self, fabric, compute_id):
        return {"stage": LocalMemory(fabric.sim, "stage", 64)}

    def body(self, ctx):
        gid = ctx.global_id
        local_size = self.local_size
        lid = gid % local_size
        group_base = gid - lid
        value = yield ctx.load("src", gid)
        yield ctx.store_local("stage", lid, value)
        yield ctx.barrier()
        partner = local_size - 1 - lid
        swapped = yield ctx.load_local("stage", partner)
        yield ctx.store("dst", group_base + lid, swapped)


class TestBarrierSemantics:
    def test_group_reversal_correct(self, fabric):
        n, local = 16, 4
        fabric.memory.allocate("src", n).fill(np.arange(n))
        dst = fabric.memory.allocate("dst", n)
        fabric.run_kernel(ReverseInGroup(local), {"n": n})
        expected = np.concatenate([np.arange(g * local, (g + 1) * local)[::-1]
                                   for g in range(n // local)])
        assert np.array_equal(dst.snapshot(), expected)

    def test_whole_launch_is_one_group_by_default(self, fabric):
        """local_size None: a single barrier synchronizes everything."""
        n = 6
        fabric.memory.allocate("src", n).fill(np.arange(n))
        dst = fabric.memory.allocate("dst", n)

        class WholeLaunch(NDRangeKernel):
            def __init__(self):
                super().__init__(name="whole")
            def global_size(self, args):
                return n
            def create_locals(self, fab, compute_id):
                return {"stage": LocalMemory(fab.sim, "stage", 16)}
            def body(self, ctx):
                gid = ctx.global_id
                value = yield ctx.load("src", gid)
                yield ctx.store_local("stage", gid, value)
                yield ctx.barrier()
                swapped = yield ctx.load_local("stage", n - 1 - gid)
                yield ctx.store("dst", gid, swapped)

        fabric.run_kernel(WholeLaunch(), {"n": n})
        assert np.array_equal(dst.snapshot(), np.arange(n)[::-1])

    def test_no_item_passes_before_all_arrive(self, fabric):
        arrivals = []
        releases = []

        class Probe(NDRangeKernel):
            def __init__(self):
                super().__init__(name="probe", local_size=4)
            def global_size(self, args):
                return 4
            def body(self, ctx):
                # Stagger arrival: higher gids arrive later.
                yield ctx.compute(ctx.global_id * 10)
                arrivals.append((ctx.global_id, ctx.now))
                yield ctx.barrier()
                releases.append((ctx.global_id, ctx.now))

        fabric.run_kernel(Probe(), {})
        last_arrival = max(cycle for _, cycle in arrivals)
        assert all(cycle > last_arrival for _, cycle in releases)
        release_cycles = {cycle for _, cycle in releases}
        assert len(release_cycles) == 1   # the whole group releases together

    def test_groups_independent(self, fabric):
        """One slow group must not hold up another."""
        releases = {}

        class TwoGroups(NDRangeKernel):
            def __init__(self):
                super().__init__(name="two", local_size=2)
            def global_size(self, args):
                return 4
            def body(self, ctx):
                if ctx.global_id >= 2:
                    yield ctx.compute(500)   # group 1 is slow
                yield ctx.barrier()
                releases[ctx.global_id] = ctx.now

        fabric.run_kernel(TwoGroups(), {})
        assert releases[0] < 100 and releases[1] < 100
        assert releases[2] >= 500 and releases[3] >= 500


class TestBarrierErrors:
    def test_single_task_barrier_rejected(self, fabric):
        class Bad(SingleTaskKernel):
            def iteration_space(self, args):
                return [0]
            def body(self, ctx):
                yield ctx.barrier()
        with pytest.raises(ProcessError, match="NDRange"):
            fabric.run_kernel(Bad(name="bad"), {})

    def test_group_larger_than_pipeline_rejected(self, fabric):
        fabric.memory.allocate("src", 8).fill(range(8))
        fabric.memory.allocate("dst", 8)
        kernel = ReverseInGroup(8, pipeline=PipelineConfig(max_inflight=2))
        with pytest.raises(ProcessError, match="rendezvous"):
            fabric.run_kernel(kernel, {"n": 8})

    def test_multi_cu_barrier_rejected(self, fabric):
        fabric.memory.allocate("src", 8).fill(range(8))
        fabric.memory.allocate("dst", 8)
        kernel = ReverseInGroup(4, num_compute_units=2)
        from repro.errors import SimulationError
        with pytest.raises((ProcessError, SimulationError),
                           match="multi-compute-unit|deadlock"):
            fabric.run_replicated(kernel, {"n": 8})

    def test_invalid_local_size_rejected(self):
        with pytest.raises(KernelBuildError):
            NDRangeKernel(local_size=0)
