"""Fuzz the ibuffer with random command/data interleavings.

A reference model (the Figure 3 transition function + a Python list)
predicts the ibuffer's state and recorded entries for any script of
commands and data arrivals; the hardware model must match.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.commands import IBufferCommand, IBufferState, SamplingMode, next_state
from repro.core.ibuffer import IBuffer, IBufferConfig
from repro.core.logic_blocks import RawRecorderLogic
from repro.pipeline.fabric import Fabric

#: Script steps: ("cmd", command) | ("data", value) | ("wait", cycles)
_steps = st.lists(
    st.one_of(
        st.tuples(st.just("cmd"),
                  st.sampled_from([IBufferCommand.RESET,
                                   IBufferCommand.SAMPLE,
                                   IBufferCommand.STOP])),
        st.tuples(st.just("data"), st.integers(0, 1000)),
        st.tuples(st.just("wait"), st.integers(1, 4)),
    ),
    min_size=1, max_size=30)


class _Reference:
    """Pure-Python model of one ibuffer instance (linear mode)."""

    def __init__(self, depth: int) -> None:
        self.depth = depth
        self.state = IBufferState.SAMPLE
        self.entries: list = []
        self.dropped_out_of_sample = 0

    def command(self, command: IBufferCommand) -> None:
        new = next_state(self.state, command)
        if new != self.state and new == IBufferState.RESET:
            self.entries = []
        self.state = new

    def data(self, value: int) -> None:
        if self.state == IBufferState.SAMPLE:
            if len(self.entries) < self.depth:
                self.entries.append(value)
        else:
            self.dropped_out_of_sample += 1


class TestIBufferFuzz:
    @given(steps=_steps, depth=st.integers(min_value=1, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_matches_reference_model(self, steps, depth):
        fabric = Fabric()
        ibuffer = IBuffer(fabric, "fuzz",
                          logic_factory=lambda cu: RawRecorderLogic(),
                          config=IBufferConfig(count=1, depth=depth,
                                               mode=SamplingMode.LINEAR))
        fabric.advance(2)  # let the unit come up in its initial state
        reference = _Reference(depth)

        for kind, payload in steps:
            if kind == "cmd":
                ibuffer.cmd_c[0].write_nb(int(payload))
                fabric.advance(3)   # one command consumed per cycle; settle
                reference.command(payload)
            elif kind == "data":
                ibuffer.data_c[0].write_nb(payload)
                fabric.advance(3)
                reference.data(payload)
            else:
                fabric.advance(payload)

        assert ibuffer.states[0] == reference.state
        recorded = [entry["value"]
                    for entry in ibuffer.trace_buffers[0].entries()]
        assert recorded == reference.entries
        assert ibuffer.samples_dropped[0] == reference.dropped_out_of_sample
