"""Unit tests for backing stores and the address map."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AddressError, UnknownBufferError
from repro.memory.backing import AddressMap, BackingStore


class TestBackingStore:
    def test_zero_size_rejected(self):
        with pytest.raises(AddressError):
            BackingStore("b", 0)

    def test_read_write_roundtrip(self):
        store = BackingStore("b", 4)
        store.write(2, 77)
        assert store.read(2) == 77

    def test_bounds_checked(self):
        store = BackingStore("b", 4)
        with pytest.raises(AddressError):
            store.read(4)
        with pytest.raises(AddressError):
            store.write(-1, 0)

    def test_address_of_scales_by_itemsize(self):
        store = BackingStore("b", 8, dtype="int64", base_address=0x100)
        assert store.address_of(0) == 0x100
        assert store.address_of(3) == 0x100 + 3 * 8

    def test_fill_requires_matching_size(self):
        store = BackingStore("b", 3)
        with pytest.raises(AddressError):
            store.fill([1, 2])
        store.fill([1, 2, 3])
        assert list(store.snapshot()) == [1, 2, 3]

    def test_snapshot_is_a_copy(self):
        store = BackingStore("b", 2)
        snap = store.snapshot()
        store.write(0, 5)
        assert snap[0] == 0

    def test_dtype_respected(self):
        store = BackingStore("b", 2, dtype="int32")
        assert store.itemsize == 4
        assert store.nbytes == 8


class TestAddressMap:
    def test_allocation_is_aligned(self):
        amap = AddressMap(start_address=0x1000, alignment=64)
        first = amap.allocate("a", 3)          # 24 bytes
        second = amap.allocate("b", 1)
        assert first.base_address % 64 == 0
        assert second.base_address % 64 == 0
        assert second.base_address >= first.end_address

    def test_non_power_of_two_alignment_rejected(self):
        with pytest.raises(AddressError):
            AddressMap(alignment=48)

    def test_double_allocation_rejected(self):
        amap = AddressMap()
        amap.allocate("a", 2)
        with pytest.raises(AddressError):
            amap.allocate("a", 2)

    def test_unknown_buffer_raises(self):
        amap = AddressMap()
        with pytest.raises(UnknownBufferError):
            amap.get("ghost")

    def test_resolve_roundtrip(self):
        amap = AddressMap()
        store = amap.allocate("data", 16)
        address = store.address_of(5)
        resolved, index = amap.resolve(address)
        assert resolved is store
        assert index == 5

    def test_resolve_outside_any_buffer_raises(self):
        amap = AddressMap()
        amap.allocate("data", 4)
        with pytest.raises(AddressError):
            amap.resolve(0x2)

    def test_resolve_misaligned_raises(self):
        amap = AddressMap()
        store = amap.allocate("data", 4, dtype="int64")
        with pytest.raises(AddressError):
            amap.resolve(store.base_address + 3)

    def test_try_resolve_returns_none_not_raise(self):
        amap = AddressMap()
        assert amap.try_resolve(0x5) is None

    def test_contains(self):
        amap = AddressMap()
        amap.allocate("x", 1)
        assert "x" in amap
        assert "y" not in amap
