"""Public-API quality gates: exports resolve, and everything public is
documented (deliverable: doc comments on every public item)."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

_PACKAGES = [
    "repro",
    "repro.sim",
    "repro.channels",
    "repro.memory",
    "repro.pipeline",
    "repro.hdl",
    "repro.synthesis",
    "repro.host",
    "repro.core",
    "repro.kernels",
    "repro.analysis",
    "repro.frontend",
    "repro.experiments",
    "repro.trace",
]


def _all_modules():
    modules = []
    for name in _PACKAGES:
        package = importlib.import_module(name)
        modules.append(package)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                modules.append(importlib.import_module(
                    f"{name}.{info.name}"))
    return modules


class TestExports:
    @pytest.mark.parametrize("package_name", _PACKAGES)
    def test_dunder_all_resolves(self, package_name):
        package = importlib.import_module(package_name)
        for export in getattr(package, "__all__", []):
            assert hasattr(package, export), (
                f"{package_name}.__all__ lists missing name {export!r}")

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        for module in _all_modules():
            assert module.__doc__, f"{module.__name__} lacks a docstring"

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in _all_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue   # re-export; documented at its home
                if not inspect.getdoc(obj):
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"undocumented public items: {undocumented}"

    def test_public_methods_documented_on_key_classes(self):
        from repro.core import IBuffer, SmartWatchpoint, StallMonitor
        from repro.host import CommandQueue, Context
        from repro.pipeline import Fabric

        undocumented = []
        for cls in (IBuffer, StallMonitor, SmartWatchpoint, Fabric,
                    Context, CommandQueue):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_"):
                    continue
                if not (inspect.isfunction(member)
                        or isinstance(member, property)):
                    continue
                target = member.fget if isinstance(member, property) else member
                if target is not None and not inspect.getdoc(target):
                    undocumented.append(f"{cls.__name__}.{name}")
        assert not undocumented, f"undocumented methods: {undocumented}"
