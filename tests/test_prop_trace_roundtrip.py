"""Property tests: trace records survive every storage/export round trip.

The pipeline under test is the issue's lossless-ness criterion:
records -> columnar store -> save/load -> query -> export -> parse must
preserve every value exactly, for arbitrary schemas, strings, and the
full int64 payload range.
"""

from __future__ import annotations

import json
import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.export import csv_to_entries, entries_to_csv
from repro.trace import (
    ColumnarStore,
    SchemaRegistry,
    TraceQuery,
    TraceRecord,
    TraceSchema,
)
from repro.trace.export import chrome_trace_events, validate_chrome_events

_INT64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
_TS = st.integers(min_value=0, max_value=2 ** 48)
_LABEL = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=8)

_FIELD_NAMES = st.lists(
    st.text(alphabet="abcdefghijk_", min_size=1, max_size=8).filter(
        lambda s: s not in ("ts", "kernel", "cu", "site", "schema")),
    min_size=1, max_size=4, unique=True)


@st.composite
def _schema_and_records(draw):
    """One dynamic schema plus a batch of conforming records."""
    fields = tuple(draw(_FIELD_NAMES))
    schema = TraceSchema("prop.test", fields)
    count = draw(st.integers(min_value=0, max_value=10))
    records = [
        TraceRecord("prop.test",
                    ts=draw(_TS),
                    kernel=draw(_LABEL),
                    cu=draw(st.integers(min_value=0, max_value=7)),
                    site=draw(_LABEL),
                    values=tuple(draw(_INT64) for _ in fields))
        for _ in range(count)]
    return schema, records


def _registry_for(schema):
    registry = SchemaRegistry(builtins=False)
    registry.register(schema)
    return registry


class TestStoreRoundTrip:
    @given(_schema_and_records())
    @settings(max_examples=60, deadline=None)
    def test_memory_round_trip(self, bundle):
        schema, records = bundle
        store = ColumnarStore.from_records(records, _registry_for(schema))
        assert store.records() == records
        assert store.total_rows() == len(records)

    @given(_schema_and_records())
    @settings(max_examples=25, deadline=None)
    def test_disk_round_trip(self, bundle):
        schema, records = bundle
        store = ColumnarStore.from_records(records, _registry_for(schema))
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "prop.ctb")
            store.save(path)
            loaded = ColumnarStore.load(path)
        assert loaded.records() == records

    @given(_schema_and_records(), st.data())
    @settings(max_examples=25, deadline=None)
    def test_append_equals_concat(self, bundle, data):
        schema, records = bundle
        registry = _registry_for(schema)
        cut = data.draw(st.integers(min_value=0, max_value=len(records)))
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "prop.ctb")
            ColumnarStore.append_to(path, records[:cut], registry)
            ColumnarStore.append_to(path, records[cut:], registry)
            loaded = ColumnarStore.load(path)
        assert loaded.records() == records


class TestQueryConsistency:
    @given(_schema_and_records(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_filters_match_python_semantics(self, bundle, data):
        schema, records = bundle
        store = ColumnarStore.from_records(records, _registry_for(schema))
        since = data.draw(_TS)
        until = data.draw(_TS)
        got = TraceQuery(store).between(since, until).records()
        expected = [r for r in records if since <= r.ts < until]
        assert got == expected

    @given(_schema_and_records(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_kernel_filter_matches(self, bundle, data):
        schema, records = bundle
        store = ColumnarStore.from_records(records, _registry_for(schema))
        kernels = sorted({r.kernel for r in records}) or [""]
        kernel = data.draw(st.sampled_from(kernels))
        got = TraceQuery(store).kernel(kernel).records()
        assert got == [r for r in records if r.kernel == kernel]

    @given(_schema_and_records())
    @settings(max_examples=60, deadline=None)
    def test_aggregate_matches_python(self, bundle):
        schema, records = bundle
        store = ColumnarStore.from_records(records, _registry_for(schema))
        field = schema.fields[0]
        agg = TraceQuery(store).aggregate(field)
        values = [r.values[0] for r in records]
        assert agg.count == len(values)
        if values:
            assert (agg.minimum, agg.maximum, agg.total) == \
                (min(values), max(values), sum(values))


class TestExportRoundTrip:
    @given(_schema_and_records())
    @settings(max_examples=40, deadline=None)
    def test_csv_entries_lossless(self, bundle):
        schema, records = bundle
        entries = [dict(zip(schema.fields, r.values)) for r in records]
        document = entries_to_csv(entries, allow_empty=True,
                                  fields=schema.fields)
        assert csv_to_entries(document, allow_empty=True) == entries

    @given(_schema_and_records())
    @settings(max_examples=40, deadline=None)
    def test_chrome_export_always_validates(self, bundle):
        schema, records = bundle
        store = ColumnarStore.from_records(records, _registry_for(schema))
        events = chrome_trace_events(store)
        assert validate_chrome_events(events) == []
        json.loads(json.dumps(events))   # serializable as-is

    @given(_schema_and_records())
    @settings(max_examples=40, deadline=None)
    def test_json_export_round_trips_rows(self, bundle):
        from repro.trace.export import store_to_json
        schema, records = bundle
        store = ColumnarStore.from_records(records, _registry_for(schema))
        rows = json.loads(store_to_json(store))
        assert len(rows) == len(records)
        for row, record in zip(rows, records):
            assert row["ts"] == record.ts
            assert row["kernel"] == record.kernel
            assert tuple(row[name] for name in schema.fields) == record.values
