"""Failure-injection and extreme-configuration tests.

These exercise the substrate where real designs break: pathological
memory configurations, saturated channels, overflowing counters, and
misconfigured instrumentation. The library must either behave sensibly or
fail loudly — never corrupt results silently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stall_monitor import StallMonitor
from repro.errors import ProcessError, SimulationError
from repro.hdl.counter import GetTimeModule
from repro.kernels.matmul import MatMulKernel, allocate_matmul_buffers, expected_matmul
from repro.kernels.vecadd import VecAddKernel
from repro.memory.global_memory import GlobalMemoryConfig
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import PipelineConfig, SingleTaskKernel


class TestExtremeMemoryConfigs:
    @pytest.mark.parametrize("config", [
        GlobalMemoryConfig(pipe_latency=0, row_hit_cycles=0,
                           row_miss_cycles=0, bank_busy_cycles=0,
                           posted_write_latency=0),
        GlobalMemoryConfig(pipe_latency=500, row_miss_cycles=200),
        GlobalMemoryConfig(banks=1, max_outstanding=1),
        GlobalMemoryConfig(banks=64, row_bytes=64),
    ])
    def test_vecadd_correct_under_any_timing(self, config):
        fabric = Fabric(memory_config=config)
        n = 12
        fabric.memory.allocate("a", n).fill(np.arange(n))
        fabric.memory.allocate("b", n).fill(np.arange(n))
        c = fabric.memory.allocate("c", n)
        fabric.run_kernel(VecAddKernel(), {"n": n})
        assert np.array_equal(c.snapshot(), np.arange(n) * 2)

    def test_zero_latency_memory_still_in_order(self):
        fabric = Fabric(memory_config=GlobalMemoryConfig(
            pipe_latency=0, row_hit_cycles=0, row_miss_cycles=0,
            bank_busy_cycles=0))
        fabric.memory.allocate("data", 8).fill(range(8))
        order = []
        class Probe(SingleTaskKernel):
            def iteration_space(self, args):
                return range(8)
            def body(self, ctx):
                value = yield ctx.load("data", 7 - ctx.iteration)
                order.append(value)
        fabric.run_kernel(Probe(name="probe"), {})
        assert order == [7 - i for i in range(8)]


class TestInstrumentationOverflow:
    def test_saturated_data_channel_drops_but_never_corrupts(self, fabric):
        """A monitor whose ibuffer cannot keep up (same-cycle bursts) must
        drop samples, not stall or corrupt the kernel."""
        monitor = StallMonitor(fabric, sites=1, depth=1024, name="burst_mon")
        class Burst(SingleTaskKernel):
            def iteration_space(self, args):
                return [0]
            def body(self, ctx):
                # 64 snapshots in a single cycle: channel depth is 8.
                for value in range(64):
                    monitor.take_snapshot(ctx, 0, value)
                yield ctx.compute(1)
        fabric.run_kernel(Burst(name="burst"), {})
        entries = monitor.read_site(0)
        values = [entry["value"] for entry in entries]
        # Only the channel-depth prefix survives (FIFO order preserved);
        # the channel reports the dropped writes.
        data_channel = monitor.ibuffer.data_c[0]
        assert values == sorted(values)
        assert data_channel.stats.write_failures > 0
        assert len(values) + data_channel.stats.write_failures == 64
        assert values == list(range(len(values)))  # exact FIFO prefix

    def test_counter_wraparound(self, fabric):
        """A narrow HDL counter wraps; timestamps stay well-defined."""
        module = GetTimeModule(fabric.sim, width_bits=6)   # wraps at 64
        fabric.advance(100)
        assert module.synthesize_behavior() == 100 % 64

    def test_kernel_with_zero_iterations_and_monitor(self, fabric):
        monitor = StallMonitor(fabric, sites=2, depth=8)
        kernel = MatMulKernel(stall_monitor=monitor)
        allocate_matmul_buffers(fabric, 1, 1, 1)
        fabric.run_kernel(kernel, {"rows_a": 0, "col_a": 0, "col_b": 0})
        assert monitor.read_site(0) == []


class TestTimeoutAndDeadlockGuards:
    def test_run_kernel_cycle_guard(self, fabric):
        class Slow(SingleTaskKernel):
            def iteration_space(self, args):
                return [0]
            def body(self, ctx):
                yield ctx.compute(10_000)
        with pytest.raises(SimulationError, match="did not complete"):
            fabric.run_kernel(Slow(name="slow"), {}, max_cycles=100)

    def test_out_of_bounds_load_fails_loudly(self, fabric):
        fabric.memory.allocate("data", 4)
        class Wild(SingleTaskKernel):
            def iteration_space(self, args):
                return [0]
            def body(self, ctx):
                yield ctx.load("data", 99)
        with pytest.raises(ProcessError, match="out of range"):
            fabric.run_kernel(Wild(name="wild"), {})

    def test_unknown_buffer_fails_loudly(self, fabric):
        class Ghost(SingleTaskKernel):
            def iteration_space(self, args):
                return [0]
            def body(self, ctx):
                yield ctx.load("nonexistent", 0)
        with pytest.raises(ProcessError, match="no buffer"):
            fabric.run_kernel(Ghost(name="ghost"), {})


class TestResultIntegrityUnderInstrumentation:
    @pytest.mark.parametrize("depth", [1, 4, 4096])
    def test_matmul_result_invariant_to_trace_depth(self, depth):
        fabric = Fabric()
        monitor = StallMonitor(fabric, sites=2, depth=depth)
        kernel = MatMulKernel(stall_monitor=monitor)
        buffers = allocate_matmul_buffers(fabric, 3, 4, 3)
        fabric.run_kernel(kernel, {"rows_a": 3, "col_a": 4, "col_b": 3})
        assert np.array_equal(buffers["data_c"].snapshot().reshape(3, 3),
                              expected_matmul(3, 4, 3))

    def test_cycle_count_invariant_to_trace_depth(self):
        cycles = []
        for depth in (4, 2048):
            fabric = Fabric()
            monitor = StallMonitor(fabric, sites=2, depth=depth)
            kernel = MatMulKernel(stall_monitor=monitor)
            allocate_matmul_buffers(fabric, 3, 4, 3)
            engine = fabric.run_kernel(kernel, {"rows_a": 3, "col_a": 4,
                                                "col_b": 3})
            cycles.append(engine.stats.total_cycles)
        assert cycles[0] == cycles[1]
