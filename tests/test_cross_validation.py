"""Cross-validation: the OpenCL-compiled ibuffer vs the native model.

The same stimulus driven into (a) the Listing-8-style ibuffer compiled
from OpenCL-C source and (b) the native :class:`repro.core.IBuffer` must
produce identical recorded values through their respective readout
protocols — two independent implementations of the paper's design
agreeing on behaviour.
"""

from __future__ import annotations

import pytest

from repro.core.host_interface import HostController
from repro.core.ibuffer import IBuffer, IBufferConfig
from repro.core.logic_blocks import RawRecorderLogic
from repro.frontend import compile_source
from repro.frontend.listings import LISTING_8_DEFINES, LISTING_8_IBUFFER
from repro.pipeline.fabric import Fabric

STIMULUS = [5, 17, 3, 99, 42, 8, 64, 7]


def _run_compiled(values):
    fabric = Fabric()
    program = compile_source(fabric, LISTING_8_IBUFFER,
                             defines=LISTING_8_DEFINES)
    fabric.memory.allocate("OUT", LISTING_8_DEFINES["DEPTH"])
    data_in = program.channel("data_in")
    for value in values:
        data_in.write_nb(value)
        fabric.advance(2)
    fabric.run_kernel(program.kernel("read_host"),
                      {"cmd": 2, "output": "OUT"})    # STOP
    fabric.advance(4)
    fabric.run_kernel(program.kernel("read_host"),
                      {"cmd": 3, "output": "OUT"})    # READ
    fabric.advance(4)
    out = list(fabric.memory.buffer("OUT").snapshot())
    return out[:len(values)]


def _run_native(values):
    fabric = Fabric()
    ibuffer = IBuffer(fabric, "native",
                      logic_factory=lambda cu: RawRecorderLogic(),
                      config=IBufferConfig(count=1,
                                           depth=LISTING_8_DEFINES["DEPTH"]))
    controller = HostController(fabric, ibuffer)
    for value in values:
        ibuffer.data_c[0].write_nb(value)
        fabric.advance(2)
    controller.stop()
    return [entry["value"] for entry in controller.read_trace()]


class TestImplementationsAgree:
    def test_recorded_values_identical(self):
        assert _run_compiled(STIMULUS) == _run_native(STIMULUS)

    def test_agree_on_single_value(self):
        assert _run_compiled([123]) == _run_native([123]) == [123]

    def test_agree_on_capacity_overflow(self):
        """Past DEPTH, both implementations keep the same linear prefix."""
        depth = LISTING_8_DEFINES["DEPTH"]
        values = list(range(100, 100 + depth + 6))
        compiled = _run_compiled(values)[:depth]
        native = _run_native(values)[:depth]
        assert compiled == native == values[:depth]
