"""Integration tests for the host interface kernel (Listing 10)."""

from __future__ import annotations

import pytest

from repro.core.commands import IBufferCommand, IBufferState
from repro.core.host_interface import HostController, HostInterfaceKernel
from repro.core.ibuffer import IBuffer, IBufferConfig
from repro.core.logic_blocks import RawRecorderLogic
from repro.errors import IBufferError
from repro.pipeline.kernel import SingleTaskKernel


def _setup(fabric, count=1, depth=4):
    ibuffer = IBuffer(fabric, "ib", logic_factory=lambda cu: RawRecorderLogic(),
                      config=IBufferConfig(count=count, depth=depth))
    controller = HostController(fabric, ibuffer)
    return ibuffer, controller


class FeedKernel(SingleTaskKernel):
    def __init__(self, ibuffer, unit=0, **kw):
        super().__init__(**kw)
        self.ibuffer = ibuffer
        self.unit = unit

    def iteration_space(self, args):
        return range(args["n"])

    def body(self, ctx):
        ctx.write_channel_nb(self.ibuffer.data_c[self.unit],
                             100 + ctx.iteration)
        yield ctx.compute(1)


class TestCommandForwarding:
    def test_stop_via_host_kernel(self, fabric):
        ibuffer, controller = _setup(fabric)
        controller.stop()
        assert ibuffer.states[0] == IBufferState.STOP

    def test_reset_then_sample_cycle(self, fabric):
        ibuffer, controller = _setup(fabric)
        controller.reset()
        assert ibuffer.states[0] == IBufferState.RESET
        controller.sample()
        assert ibuffer.states[0] == IBufferState.SAMPLE

    def test_read_command_via_command_method_rejected(self, fabric):
        _, controller = _setup(fabric)
        with pytest.raises(IBufferError):
            controller.command(IBufferCommand.READ)

    def test_out_of_range_unit_rejected(self, fabric):
        ibuffer, controller = _setup(fabric, count=2)
        from repro.errors import ProcessError
        with pytest.raises(ProcessError):
            controller.stop(unit=5)


class TestTraceReadout:
    def test_full_protocol_recovers_entries(self, fabric):
        ibuffer, controller = _setup(fabric, depth=8)
        fabric.run_kernel(FeedKernel(ibuffer, name="feed"), {"n": 5})
        controller.stop()
        entries = controller.read_trace()
        assert [e["value"] for e in entries] == [100, 101, 102, 103, 104]

    def test_readout_is_fixed_length_with_partial_fill(self, fabric):
        """Listing 10 always reads DEPTH entries; invalid slots decode away."""
        ibuffer, controller = _setup(fabric, depth=8)
        fabric.run_kernel(FeedKernel(ibuffer, name="feed"), {"n": 2})
        controller.stop()
        entries = controller.read_trace()
        assert len(entries) == 2

    def test_read_all_stops_sampling_units(self, fabric):
        ibuffer, controller = _setup(fabric, count=2, depth=4)
        fabric.run_kernel(FeedKernel(ibuffer, unit=1, name="feed"), {"n": 3})
        traces = controller.read_all()
        assert set(traces) == {0, 1}
        assert [e["value"] for e in traces[1]] == [100, 101, 102]
        assert traces[0] == []

    def test_reread_after_reset_sees_new_data(self, fabric):
        ibuffer, controller = _setup(fabric, depth=8)
        feed = FeedKernel(ibuffer, name="feed")   # re-enqueued, as on hardware
        fabric.run_kernel(feed, {"n": 2})
        controller.stop()
        first = controller.read_trace()
        controller.reset()
        controller.sample()
        fabric.run_kernel(feed, {"n": 1})
        controller.stop()
        second = controller.read_trace()
        assert len(first) == 2
        assert len(second) == 1

    def test_foreign_kernel_on_same_channel_rejected(self, fabric):
        """SPSC endpoint discipline: a *different* kernel cannot produce on
        an ibuffer data channel already owned by another kernel."""
        ibuffer, controller = _setup(fabric, depth=8)
        fabric.run_kernel(FeedKernel(ibuffer, name="feed"), {"n": 1})
        from repro.errors import ProcessError
        with pytest.raises(ProcessError, match="single-producer"):
            fabric.run_kernel(FeedKernel(ibuffer, name="other_feed"), {"n": 1})


class TestKernelShape:
    def test_invalid_unit_argument_raises_in_kernel(self, fabric):
        ibuffer, controller = _setup(fabric)
        kernel = HostInterfaceKernel(ibuffer, name="hif2")
        from repro.errors import ProcessError
        with pytest.raises(ProcessError):
            fabric.run_kernel(kernel, {"cmd": 2, "id": 9, "out": "x"})

    def test_resource_profile_scales_with_instances(self, fabric):
        ibuffer, controller = _setup(fabric, count=4)
        profile = controller.kernel.resource_profile()
        assert profile.channel_endpoints == 8  # 2 per instance, unrolled
