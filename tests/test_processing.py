"""Tests for processing logic blocks (filter / histogram / summary)."""

from __future__ import annotations

import pytest

from repro.core.commands import IBufferCommand, IBufferState, SamplingMode
from repro.core.host_interface import HostController
from repro.core.ibuffer import IBuffer, IBufferConfig
from repro.core.processing import (
    HistogramLogic,
    SummaryLogic,
    ThresholdFilterLogic,
)
from repro.errors import IBufferError
from repro.pipeline.kernel import SingleTaskKernel


class TestThresholdFilterUnit:
    def test_passes_only_at_or_above_threshold(self):
        logic = ThresholdFilterLogic(threshold=100)
        assert list(logic.on_data(1, 99)) == []
        assert list(logic.on_data(2, 100)) == [{"timestamp": 2, "value": 100}]
        assert logic.seen == 2
        assert logic.passed == 1

    def test_reset_clears_counters(self):
        logic = ThresholdFilterLogic(threshold=5)
        list(logic.on_data(0, 9))
        logic.on_reset()
        assert logic.seen == logic.passed == 0


class TestHistogramUnit:
    def test_binning_and_clamp(self):
        logic = HistogramLogic(bin_width=10, bins=4)
        for value in (0, 9, 10, 35, 1000):
            list(logic.on_data(0, value))
        assert logic.counts == [2, 1, 0, 2]   # 1000 clamps into last bin

    def test_negative_clamps_to_zero_bin(self):
        logic = HistogramLogic(bin_width=10, bins=4)
        list(logic.on_data(0, -5))
        assert logic.counts[0] == 1

    def test_per_event_recording_is_empty(self):
        logic = HistogramLogic(bin_width=4)
        assert list(logic.on_data(0, 7)) == []

    def test_flush_emits_nonempty_bins_only(self):
        logic = HistogramLogic(bin_width=10, bins=4)
        list(logic.on_data(0, 15))
        entries = list(logic.on_flush(99))
        assert entries == [{"bin_low": 10, "count": 1}]

    def test_validation(self):
        with pytest.raises(IBufferError):
            HistogramLogic(bin_width=0)
        with pytest.raises(IBufferError):
            HistogramLogic(bin_width=1, bins=0)


class TestSummaryUnit:
    def test_running_statistics(self):
        logic = SummaryLogic()
        for value in (5, 2, 9):
            list(logic.on_data(0, value))
        entries = list(logic.on_flush(0))
        assert entries == [{"count": 3, "minimum": 2, "maximum": 9,
                            "total": 16}]
        assert logic.mean == pytest.approx(16 / 3)

    def test_empty_flushes_nothing(self):
        assert list(SummaryLogic().on_flush(0)) == []


class _Feeder(SingleTaskKernel):
    """Feeds a fixed value sequence into an ibuffer data channel."""

    def __init__(self, ibuffer, values, **kw):
        super().__init__(**kw)
        self.ibuffer = ibuffer
        self.values = values

    def iteration_space(self, args):
        return range(len(self.values))

    def body(self, ctx):
        ctx.write_channel_nb(self.ibuffer.data_c[0], self.values[ctx.iteration])
        yield ctx.compute(1)


class TestEndToEndProcessing:
    def test_filter_catches_rare_events_in_tiny_buffer(self, fabric):
        """100 values, 3 outliers, trace depth 4: all outliers captured."""
        values = [10] * 100
        for index in (17, 43, 91):
            values[index] = 500 + index
        ibuffer = IBuffer(fabric, "flt",
                          logic_factory=lambda cu: ThresholdFilterLogic(100),
                          config=IBufferConfig(count=1, depth=4))
        controller = HostController(fabric, ibuffer)
        fabric.run_kernel(_Feeder(ibuffer, values, name="feed"), {})
        controller.stop()
        entries = controller.read_trace()
        assert sorted(e["value"] for e in entries) == [517, 543, 591]

    def test_histogram_flushed_through_readout_protocol(self, fabric):
        values = [3, 7, 12, 13, 25]
        ibuffer = IBuffer(fabric, "hist",
                          logic_factory=lambda cu: HistogramLogic(10, bins=4),
                          config=IBufferConfig(count=1, depth=8))
        controller = HostController(fabric, ibuffer)
        fabric.run_kernel(_Feeder(ibuffer, values, name="feed"), {})
        controller.stop()   # SAMPLE -> STOP flushes the histogram
        entries = controller.read_trace()
        as_map = {e["bin_low"]: e["count"] for e in entries}
        assert as_map == {0: 2, 10: 2, 20: 1}

    def test_summary_single_entry_unbounded_window(self, fabric):
        """500 observations, one trace slot needed."""
        values = list(range(500))
        ibuffer = IBuffer(fabric, "summ",
                          logic_factory=lambda cu: SummaryLogic(),
                          config=IBufferConfig(count=1, depth=1))
        controller = HostController(fabric, ibuffer)
        fabric.run_kernel(_Feeder(ibuffer, values, name="feed"), {})
        controller.stop()
        entries = controller.read_trace()
        assert entries == [{"count": 500, "minimum": 0, "maximum": 499,
                            "total": sum(values)}]

    def test_flush_happens_once_not_on_read_drain(self, fabric):
        """The READ->STOP event transition must not re-flush."""
        ibuffer = IBuffer(fabric, "once",
                          logic_factory=lambda cu: SummaryLogic(),
                          config=IBufferConfig(count=1, depth=4))
        controller = HostController(fabric, ibuffer)
        fabric.run_kernel(_Feeder(ibuffer, [1, 2], name="feed"), {})
        controller.stop()
        first = controller.read_trace()
        # READ drained to STOP; another read must see the same single entry.
        second = controller.read_trace()
        assert len(first) == len(second) == 1
