"""Integration tests: compiled OpenCL-C kernels executing on the fabric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend import FrontendError, compile_source, extract_profile, parse
from repro.pipeline.fabric import Fabric


class TestSingleTaskExecution:
    VECADD = """
        __kernel void vecadd(__global int* a, __global int* b,
                             __global int* c, int n) {
            for (int i = 0; i < n; i++) {
                c[i] = a[i] + b[i];
            }
        }
    """

    def _run_vecadd(self, fabric, n=8):
        program = compile_source(fabric, self.VECADD)
        fabric.memory.allocate("A", n).fill(np.arange(n))
        fabric.memory.allocate("B", n).fill(np.arange(n) * 10)
        fabric.memory.allocate("C", n)
        fabric.run_kernel(program.kernel("vecadd"),
                          {"a": "A", "b": "B", "c": "C", "n": n})
        return fabric.memory.buffer("C").snapshot()

    def test_vecadd_correct(self, fabric):
        assert np.array_equal(self._run_vecadd(fabric),
                              np.arange(8) * 11)

    def test_single_task_classified(self, fabric):
        program = compile_source(fabric, self.VECADD)
        assert program.kernel("vecadd").kind == "single-task"

    def test_missing_argument_reported(self, fabric):
        program = compile_source(fabric, self.VECADD)
        from repro.errors import ProcessError
        with pytest.raises(ProcessError, match="missing argument"):
            fabric.run_kernel(program.kernel("vecadd"), {"a": "A"})

    def test_global_pointer_needs_buffer_name(self, fabric):
        program = compile_source(fabric, self.VECADD)
        from repro.errors import ProcessError
        with pytest.raises(ProcessError, match="buffer name"):
            fabric.run_kernel(program.kernel("vecadd"),
                              {"a": 1, "b": "B", "c": "C", "n": 1})


class TestControlFlow:
    def _run(self, fabric, body, n=8, extra_args=None):
        source = f"""
            __kernel void k(__global int* out, int n) {{ {body} }}
        """
        program = compile_source(fabric, source)
        fabric.memory.allocate("OUT", n)
        args = {"out": "OUT", "n": n}
        args.update(extra_args or {})
        fabric.run_kernel(program.kernel("k"), args)
        return fabric.memory.buffer("OUT").snapshot()

    def test_nested_loops(self, fabric):
        out = self._run(fabric, """
            for (int i = 0; i < 2; i++) {
                for (int j = 0; j < 4; j++) {
                    out[i * 4 + j] = i * 10 + j;
                }
            }
        """)
        assert list(out) == [0, 1, 2, 3, 10, 11, 12, 13]

    def test_break_and_continue(self, fabric):
        out = self._run(fabric, """
            int written = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2 == 0) continue;
                if (i > 8) break;
                out[written] = i;
                written++;
            }
        """)
        assert list(out[:4]) == [1, 3, 5, 7]

    def test_while_with_condition(self, fabric):
        out = self._run(fabric, """
            int i = 0;
            while (i < n) {
                out[i] = i * i;
                i++;
            }
        """)
        assert list(out) == [i * i for i in range(8)]

    def test_compound_assign_and_division(self, fabric):
        out = self._run(fabric, """
            int a = 7;
            a *= 3;      // 21
            a -= 1;      // 20
            a /= 6;      // 3 (C truncation)
            out[0] = a;
            out[1] = 7 % 3;
            out[2] = -7 / 2;   // -3 in C (truncation toward zero)
        """)
        assert list(out[:3]) == [3, 1, -3]

    def test_logical_short_circuit(self, fabric):
        # Division by zero on the right side must not execute.
        out = self._run(fabric, """
            int zero = 0;
            if (0 && (1 / zero)) { out[0] = 1; } else { out[0] = 2; }
            if (1 || (1 / zero)) { out[1] = 3; }
        """)
        assert list(out[:2]) == [2, 3]

    def test_return_exits_kernel(self, fabric):
        out = self._run(fabric, """
            out[0] = 1;
            return;
            out[1] = 2;
        """)
        assert list(out[:2]) == [1, 0]

    def test_division_by_zero_reported(self, fabric):
        from repro.errors import ProcessError
        with pytest.raises(ProcessError, match="division by zero"):
            self._run(fabric, "out[0] = 1 / 0;")

    def test_undefined_identifier_reported(self, fabric):
        from repro.errors import ProcessError
        with pytest.raises(ProcessError, match="undefined identifier"):
            self._run(fabric, "out[0] = ghost;")


class TestChannelsFromSource:
    def test_producer_consumer_pair(self, fabric):
        source = """
            channel int stream __attribute__((depth(4)));

            __kernel void producer(__global int* src, int n) {
                for (int i = 0; i < n; i++) {
                    write_channel_altera(stream, src[i]);
                }
            }

            __kernel void consumer(__global int* dst, int n) {
                for (int i = 0; i < n; i++) {
                    dst[i] = read_channel_altera(stream) * 2;
                }
            }
        """
        program = compile_source(fabric, source)
        n = 6
        fabric.memory.allocate("S", n).fill(np.arange(n))
        fabric.memory.allocate("D", n)
        producer = fabric.launch(program.kernel("producer"),
                                 {"src": "S", "n": n})
        consumer = fabric.launch(program.kernel("consumer"),
                                 {"dst": "D", "n": n})
        fabric.run(producer.completion, consumer.completion)
        fabric.run(fabric.memory.drained())
        assert list(fabric.memory.buffer("D").snapshot()) == [
            0, 2, 4, 6, 8, 10]

    def test_nonblocking_read_with_valid_flag(self, fabric):
        source = """
            channel int c __attribute__((depth(2)));

            __kernel void probe(__global int* out) {
                bool valid;
                int v = read_channel_nb_altera(c, &valid);
                out[0] = valid;
                out[1] = v;
            }
        """
        program = compile_source(fabric, source)
        fabric.memory.allocate("O", 2)
        fabric.run_kernel(program.kernel("probe"), {"out": "O"})
        assert list(fabric.memory.buffer("O").snapshot()) == [0, 0]


class TestAutorunFromSource:
    def test_listing1_counter_tracks_cycles(self, fabric):
        source = """
            channel int time_ch1 __attribute__((depth(0)));

            __attribute__((autorun))
            __kernel void timer_srv(void) {
                int count = 0;
                while (1) {
                    bool success;
                    count++;
                    success = write_channel_nb_altera(time_ch1, count);
                }
            }

            __kernel void reader(__global int* out) {
                int t = read_channel_altera(time_ch1);
                out[0] = t;
            }
        """
        program = compile_source(fabric, source)
        fabric.memory.allocate("O", 1)
        fabric.advance(40)
        fabric.run_kernel(program.kernel("reader"), {"out": "O"})
        stamp = int(fabric.memory.buffer("O").read(0))
        assert abs(stamp - 41) <= 1   # free-running: ~1 count per cycle

    def test_listing5_sequence_blocking_semantics(self, fabric):
        source = """
            channel int seq_ch __attribute__((depth(0)));

            __attribute__((autorun))
            __kernel void seq_srv(void) {
                int count = 0;
                while (1) {
                    count++;
                    write_channel_altera(seq_ch, count);
                }
            }

            __kernel void reader(__global int* out, int n) {
                for (int i = 0; i < n; i++) {
                    out[i] = read_channel_altera(seq_ch);
                }
            }
        """
        program = compile_source(fabric, source)
        fabric.memory.allocate("O", 4)
        fabric.advance(100)   # counter must NOT advance while unread
        fabric.run_kernel(program.kernel("reader"), {"out": "O", "n": 4})
        assert list(fabric.memory.buffer("O").snapshot()) == [1, 2, 3, 4]

    def test_replicated_autorun_compute_ids(self, fabric):
        source = """
            channel int out_c[3];

            __attribute__((autorun)) __attribute__((num_compute_units(3, 1)))
            __kernel void ids(void) {
                int id = get_compute_id(0);
                write_channel_nb_altera(out_c[id], id + 100);
                while (1) { }
            }
        """
        compile_source(fabric, source)
        fabric.advance(3)
        values = sorted(fabric.channels.get_array("out_c")[i].read_nb()[0]
                        for i in range(3))
        assert values == [100, 101, 102]


class TestNDRangeFromSource:
    def test_get_global_id_dispatch(self, fabric):
        source = """
            __kernel void square(__global int* out) {
                int gid = get_global_id(0);
                out[gid] = gid * gid;
            }
        """
        program = compile_source(fabric, source)
        kernel = program.kernel("square")
        assert kernel.kind == "ndrange"
        fabric.memory.allocate("O", 6)
        fabric.run_kernel(kernel, {"out": "O", "__global_size": 6})
        assert list(fabric.memory.buffer("O").snapshot()) == [
            0, 1, 4, 9, 16, 25]

    def test_missing_global_size_reported(self, fabric):
        program = compile_source(fabric, """
            __kernel void k(__global int* out) {
                out[get_global_id(0)] = 1;
            }
        """)
        from repro.errors import ProcessError
        with pytest.raises(ProcessError, match="__global_size"):
            fabric.run_kernel(program.kernel("k"), {"out": "O"})


class TestHDLCallsFromSource:
    def test_get_time_library_call(self, fabric):
        from repro.hdl.library import HDLLibrary
        library = HDLLibrary(fabric.sim)
        library.add_get_time()
        source = """
            __kernel void timed(__global int* out) {
                int start_t = get_time(0);
                int sum = 0;
                for (int i = 0; i < 5; i++) { sum += i; }
                int end_t = get_time(sum);
                out[0] = end_t - start_t;
                out[1] = sum;
            }
        """
        program = compile_source(fabric, source, hdl_library=library)
        fabric.memory.allocate("O", 2)
        fabric.run_kernel(program.kernel("timed"), {"out": "O"})
        out = fabric.memory.buffer("O").snapshot()
        assert out[1] == 10
        assert out[0] >= 0   # elapsed cycles of the loop

    def test_unknown_function_reported(self, fabric):
        program = compile_source(fabric, """
            __kernel void k(__global int* out) { out[0] = warp_drive(9); }
        """)
        fabric.memory.allocate("O", 1)
        from repro.errors import ProcessError
        with pytest.raises(ProcessError, match="unknown function"):
            fabric.run_kernel(program.kernel("k"), {"out": "O"})


class TestProfileExtraction:
    def test_counts_memory_sites_and_operators(self):
        program = parse("""
            __kernel void k(__global int* a, __global int* b, int n) {
                for (int i = 0; i < n; i++) {
                    b[i] = a[i] * a[i] + 3;
                }
            }
        """)
        profile = extract_profile(program.kernels[0])
        assert profile.store_sites == 1
        assert profile.load_sites == 2
        assert profile.multipliers == 1
        assert profile.adders >= 2       # + and i++
        assert profile.control_states > 2

    def test_channel_endpoints_counted(self):
        program = parse("""
            channel int c;
            __kernel void k(void) {
                write_channel_altera(c, read_channel_altera(c) + 1);
            }
        """)
        profile = extract_profile(program.kernels[0])
        assert profile.channel_endpoints == 2

    def test_synthesizable_via_cost_model(self, fabric):
        """Compiled kernels plug straight into the synthesis model."""
        from repro.host.context import Context
        from repro.host.program import Program
        context = Context()
        compiled = compile_source(context.fabric, """
            __kernel void k(__global int* a, __global int* b, int n) {
                for (int i = 0; i < n; i++) { b[i] = a[i] + 1; }
            }
        """)
        report = Program(context, [compiled.kernel("k")]).synthesis_report()
        assert report.fmax_mhz > 0
        assert report.total.alms > 0


class TestPrivateArrays:
    def test_declaration_and_access(self, fabric):
        from repro.frontend import compile_source
        program = compile_source(fabric, """
            __kernel void k(__global int* out, int n) {
                int acc[4];
                for (int i = 0; i < n; i++) {
                    acc[i % 4] += i;
                }
                for (int j = 0; j < 4; j++) {
                    out[j] = acc[j];
                }
            }
        """)
        fabric.memory.allocate("O", 4)
        fabric.run_kernel(program.kernel("k"), {"out": "O", "n": 8})
        # Lanes: 0+4, 1+5, 2+6, 3+7.
        assert list(fabric.memory.buffer("O").snapshot()) == [4, 6, 8, 10]

    def test_out_of_range_access_reported(self, fabric):
        from repro.frontend import compile_source
        from repro.errors import ProcessError
        program = compile_source(fabric, """
            __kernel void k(__global int* out) {
                int acc[2];
                out[0] = acc[5];
            }
        """)
        fabric.memory.allocate("O", 1)
        with pytest.raises(ProcessError, match="out of range"):
            fabric.run_kernel(program.kernel("k"), {"out": "O"})

    def test_private_arrays_are_zero_time(self, fabric):
        """Register-file accesses must not add cycles."""
        from repro.frontend import compile_source
        source_template = """
            __kernel void k(__global int* out, int n) {{
                {decl}
                int x = 0;
                for (int i = 0; i < n; i++) {{ {body} }}
                out[0] = x;
            }}
        """
        program = compile_source(fabric, source_template.format(
            decl="int acc[8];", body="acc[i % 8] = i; x += acc[i % 8];"))
        fabric.memory.allocate("O", 1)
        engine = fabric.run_kernel(program.kernel("k"), {"out": "O", "n": 32})
        other = Fabric()
        program2 = compile_source(other, source_template.format(
            decl="", body="x += i;"))
        other.memory.allocate("O", 1)
        engine2 = other.run_kernel(program2.kernel("k"), {"out": "O", "n": 32})
        assert engine.stats.total_cycles == engine2.stats.total_cycles


class TestSwitchStatement:
    def _run_switch(self, fabric, subject):
        from repro.frontend import compile_source
        program = compile_source(fabric, """
            __kernel void k(__global int* out, int sel) {
                int r = 0;
                switch (sel) {
                    case 1:
                        r = 10;
                        break;
                    case 2:
                        r = 20;        // falls through to case 3
                    case 3:
                        r = r + 5;
                        break;
                    default:
                        r = 99;
                        break;
                }
                out[0] = r;
            }
        """)
        name = f"O{subject}"
        fabric.memory.allocate(name, 1)
        fabric.run_kernel(program.kernel("k"), {"out": name, "sel": subject})
        return int(fabric.memory.buffer(name).read(0))

    def test_simple_case(self, fabric):
        assert self._run_switch(fabric, 1) == 10

    def test_fallthrough(self, fabric):
        assert self._run_switch(fabric, 2) == 25

    def test_direct_case_after_fallthrough_target(self, fabric):
        assert self._run_switch(fabric, 3) == 5

    def test_default(self, fabric):
        assert self._run_switch(fabric, 7) == 99

    def test_defines_reachable_in_kernels(self, fabric):
        from repro.frontend import compile_source
        program = compile_source(fabric, """
            __kernel void k(__global int* out) {
                out[0] = MAGIC * 2;
            }
        """, defines={"MAGIC": 21})
        fabric.memory.allocate("O", 1)
        fabric.run_kernel(program.kernel("k"), {"out": "O"})
        assert fabric.memory.buffer("O").read(0) == 42


class TestBarrierFromSource:
    def test_workgroup_reversal_compiles_and_runs(self, fabric):
        from repro.frontend import compile_source
        # local memory is not in the frontend subset; a barrier plus a
        # global staging buffer demonstrates the sync itself.
        program = compile_source(fabric, """
            __kernel void stage_then_read(__global int* src,
                                          __global int* stage,
                                          __global int* dst, int n) {
                int gid = get_global_id(0);
                stage[gid] = src[gid];
                barrier(CLK_GLOBAL_MEM_FENCE);
                dst[gid] = stage[n - 1 - gid];
            }
        """)
        n = 6
        fabric.memory.allocate("S", n).fill(range(n))
        fabric.memory.allocate("G", n)
        fabric.memory.allocate("D", n)
        fabric.run_kernel(program.kernel("stage_then_read"),
                          {"src": "S", "stage": "G", "dst": "D", "n": n,
                           "__global_size": n})
        assert list(fabric.memory.buffer("D").snapshot()) == list(range(n))[::-1]


class TestLocalMemoryFromSource:
    def test_workgroup_reverse_with_local_and_barrier(self, fabric):
        """The canonical __local + barrier kernel, compiled from source."""
        from repro.frontend import compile_source
        program = compile_source(fabric, """
            __kernel void reverse(__global int* src, __global int* dst,
                                  int n) {
                __local int stage[32];
                int gid = get_global_id(0);
                stage[gid] = src[gid];
                barrier(CLK_LOCAL_MEM_FENCE);
                dst[gid] = stage[n - 1 - gid];
            }
        """)
        n = 8
        fabric.memory.allocate("S", n).fill(range(n))
        fabric.memory.allocate("D", n)
        fabric.run_kernel(program.kernel("reverse"),
                          {"src": "S", "dst": "D", "n": n,
                           "__global_size": n})
        assert list(fabric.memory.buffer("D").snapshot()) == list(range(n))[::-1]

    def test_local_size_from_define(self, fabric):
        from repro.frontend import compile_source
        program = compile_source(fabric, """
            #define TILE 16
            __kernel void k(__global int* out) {
                __local int buf[TILE];
                int gid = get_global_id(0);
                buf[gid] = gid * 2;
                out[gid] = buf[gid];
            }
        """)
        fabric.memory.allocate("O", 4)
        fabric.run_kernel(program.kernel("k"),
                          {"out": "O", "__global_size": 4})
        assert list(fabric.memory.buffer("O").snapshot()) == [0, 2, 4, 6]

    def test_local_scalar_rejected(self, fabric):
        from repro.frontend import compile_source
        from repro.frontend.lexer import FrontendError
        with pytest.raises(FrontendError, match="must be an array"):
            compile_source(fabric, """
                __kernel void k(__global int* out) {
                    __local int x;
                    out[0] = x;
                }
            """)

    def test_local_accesses_cost_cycles_unlike_private(self, fabric):
        """__local is timed block RAM; private arrays are zero-time."""
        from repro.frontend import compile_source
        source = """
            __kernel void k(__global int* out, int n) {{
                {decl}
                int acc = 0;
                for (int i = 0; i < n; i++) {{
                    {body}
                }}
                out[0] = acc;
            }}
        """
        slow_prog = compile_source(fabric, source.format(
            decl="__local int buf[8];", body="buf[i % 8] = i; acc += buf[i % 8];"))
        fabric.memory.allocate("O", 1)
        slow = fabric.run_kernel(slow_prog.kernel("k"),
                                 {"out": "O", "n": 32})
        fast_fabric = Fabric()
        fast_prog = compile_source(fast_fabric, source.format(
            decl="int buf[8];", body="buf[i % 8] = i; acc += buf[i % 8];"))
        fast_fabric.memory.allocate("O", 1)
        fast = fast_fabric.run_kernel(fast_prog.kernel("k"),
                                      {"out": "O", "n": 32})
        assert slow.stats.total_cycles > fast.stats.total_cycles
