"""Tests for the columnar trace store and the ``.ctb`` on-disk format."""

from __future__ import annotations

import json
import struct

import pytest

from repro.errors import TraceStoreError
from repro.trace import (
    ColumnarSink,
    ColumnarStore,
    SchemaRegistry,
    Segment,
    TraceHub,
    TraceRecord,
)
from repro.trace.columnar import MAGIC


def _registry():
    return SchemaRegistry()


def _records(n=5, schema="watch.event", kernel="wp"):
    return [TraceRecord(schema, ts=10 * i, kernel=kernel, cu=i % 2,
                        site=f"{kernel}[{i % 2}]", values=(i, i + 1, i % 3))
            for i in range(n)]


class TestSegment:
    def test_round_trip_rows(self):
        registry = _registry()
        records = _records(4)
        segment = Segment.from_records(registry.get("watch.event"), records)
        assert segment.rows == 4
        assert [segment.record(i) for i in range(4)] == records
        row = segment.row(2)
        assert row["schema"] == "watch.event" and row["address"] == 2

    def test_min_max_ts(self):
        registry = _registry()
        segment = Segment.from_records(registry.get("watch.event"),
                                       _records(3))
        assert (segment.min_ts, segment.max_ts) == (0, 20)

    def test_wrong_schema_record_rejected(self):
        registry = _registry()
        with pytest.raises(TraceStoreError):
            Segment.from_records(
                registry.get("run.span"),
                [TraceRecord("watch.event", 0, "k", 0, "s", (1, 2, 3))])

    def test_non_int64_value_rejected(self):
        registry = _registry()
        with pytest.raises(TraceStoreError):
            Segment.from_records(
                registry.get("run.span"),
                [TraceRecord("run.span", 0, "k", 0, "s", (1 << 70, 0))])

    def test_payload_round_trip(self):
        registry = _registry()
        segment = Segment.from_records(registry.get("watch.event"),
                                       _records(6))
        data = segment.payload_bytes()
        clone = Segment.from_payload(segment.meta(0, len(data)), data)
        assert [clone.record(i) for i in range(6)] == \
            [segment.record(i) for i in range(6)]

    def test_payload_length_validated(self):
        registry = _registry()
        segment = Segment.from_records(registry.get("watch.event"),
                                       _records(2))
        data = segment.payload_bytes()
        with pytest.raises(TraceStoreError):
            Segment.from_payload(segment.meta(0, len(data)), data[:-8])


class TestColumnarStore:
    def test_save_load_round_trip(self, tmp_path):
        registry = _registry()
        records = (_records(5) +
                   [TraceRecord("run.span", 7, "k", 0, "", (0, 99))])
        store = ColumnarStore.from_records(records, registry)
        path = str(tmp_path / "t.ctb")
        store.save(path)
        loaded = ColumnarStore.load(path)
        assert loaded.records() == store.records()
        assert loaded.schemas() == ["run.span", "watch.event"]
        assert loaded.fields_of("run.span") == ("start", "end")
        assert len(loaded) == 6

    def test_append_to_accumulates(self, tmp_path):
        registry = _registry()
        path = str(tmp_path / "t.ctb")
        assert ColumnarStore.append_to(path, _records(3), registry) == 3
        assert ColumnarStore.append_to(path, _records(2, kernel="w2"),
                                       registry) == 2
        loaded = ColumnarStore.load(path)
        assert loaded.total_rows() == 5
        assert len(loaded.segments) == 2
        kernels = {r.kernel for r in loaded.records()}
        assert kernels == {"wp", "w2"}

    def test_load_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.ctb"
        path.write_bytes(b"NOPE" + b"\x00" * 40)
        with pytest.raises(TraceStoreError):
            ColumnarStore.load(str(path))

    def test_load_rejects_truncated_file(self, tmp_path):
        registry = _registry()
        path = tmp_path / "t.ctb"
        ColumnarStore.from_records(_records(3), registry).save(str(path))
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(TraceStoreError):
            ColumnarStore.load(str(path))

    def test_load_rejects_bad_version(self, tmp_path):
        path = tmp_path / "t.ctb"
        footer = json.dumps({"version": 99, "segments": []}).encode()
        path.write_bytes(MAGIC + footer + struct.pack("<Q", len(footer))
                         + MAGIC)
        with pytest.raises(TraceStoreError):
            ColumnarStore.load(str(path))

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(TraceStoreError):
            ColumnarStore.load(str(tmp_path / "absent.ctb"))

    def test_append_to_rejects_non_ctb(self, tmp_path):
        registry = _registry()
        path = tmp_path / "x.ctb"
        path.write_bytes(b"not a trace bundle, definitely")
        with pytest.raises(TraceStoreError):
            ColumnarStore.append_to(str(path), _records(1), registry)

    def test_string_dictionary_is_per_segment(self, tmp_path):
        registry = _registry()
        store = ColumnarStore.from_records(_records(4), registry)
        segment = store.segments[0]
        # 1 kernel + 2 sites, each interned once
        assert len(segment.strings) == 3


class TestColumnarSink:
    def test_hub_to_disk_via_close(self, tmp_path):
        path = str(tmp_path / "sink.ctb")
        hub = TraceHub()
        sink = hub.attach(ColumnarSink(path, hub.registry))
        for record in _records(4):
            hub.emit_record(record)
        hub.close()
        assert sink.rows_written == 4
        assert ColumnarStore.load(path).total_rows() == 4

    def test_flush_appends_incrementally(self, tmp_path):
        path = str(tmp_path / "sink.ctb")
        registry = _registry()
        sink = ColumnarSink(path, registry)
        for record in _records(2):
            sink.on_record(registry.get(record.schema), record)
        assert sink.flush() == 2
        assert sink.flush() == 0    # nothing pending
        for record in _records(3):
            sink.on_record(registry.get(record.schema), record)
        sink.close()
        assert sink.rows_written == 5
        assert ColumnarStore.load(path).total_rows() == 5


class TestLazyDecode:
    def test_load_defers_column_decode(self, tmp_path):
        path = str(tmp_path / "lazy.ctb")
        ColumnarStore.from_records(_records(5), _registry()).save(path)
        segment = ColumnarStore.load(path).segments[0]
        # Footer stats answer shape questions without touching the payload.
        assert (segment.min_ts, segment.max_ts) == (0, 40)
        assert segment.ts_monotone is True
        assert segment._columns == {}
        column = segment.column("ts")
        assert list(column) == [0, 10, 20, 30, 40]
        assert segment.column("ts") is column   # decoded once, cached

    def test_loaded_payload_is_not_reencoded(self, tmp_path):
        path = str(tmp_path / "lazy.ctb")
        store = ColumnarStore.from_records(_records(6), _registry())
        store.save(path)
        loaded = ColumnarStore.load(path)
        assert loaded.segments[0].payload_bytes() == \
            store.segments[0].payload_bytes()

    def test_meta_carries_footer_stats(self):
        registry = _registry()
        records = _records(3)
        records.reverse()   # ts now decreasing
        segment = Segment.from_records(registry.get("watch.event"), records)
        meta = segment.meta(0, 0)
        assert (meta["min_ts"], meta["max_ts"]) == (0, 20)
        assert meta["ts_monotone"] is False

    def test_legacy_footer_without_stats(self):
        registry = _registry()
        segment = Segment.from_records(registry.get("watch.event"),
                                       _records(4))
        data = segment.payload_bytes()
        meta = segment.meta(0, len(data))
        for key in ("min_ts", "max_ts", "ts_monotone"):
            del meta[key]   # pre-stats footers (and the wire path)
        clone = Segment.from_payload(meta, data)
        assert (clone.min_ts, clone.max_ts) == (0, 30)
        assert clone.ts_monotone is True
        assert [clone.record(i) for i in range(4)] == \
            [segment.record(i) for i in range(4)]

    def test_corrupt_footer_min_ts_rejected(self):
        registry = _registry()
        segment = Segment.from_records(registry.get("watch.event"),
                                       _records(3))
        data = segment.payload_bytes()
        meta = segment.meta(0, len(data))
        meta["min_ts"] = 7
        clone = Segment.from_payload(meta, data)
        with pytest.raises(TraceStoreError, match="corrupt footer"):
            clone.column("ts")

    def test_corrupt_monotone_claim_rejected(self):
        registry = _registry()
        records = _records(3)
        records.reverse()
        segment = Segment.from_records(registry.get("watch.event"), records)
        data = segment.payload_bytes()
        meta = segment.meta(0, len(data))
        meta["ts_monotone"] = True   # the data is decreasing
        clone = Segment.from_payload(meta, data)
        with pytest.raises(TraceStoreError, match="corrupt footer"):
            clone.column("ts")
