"""Tests for the emulation daemon: protocol, sessions, jobs, round trips.

The determinism contract is pinned here: a kernel or experiment run
through the server (buffers, sim.now, engine/LSU/memory stats, trace
records, rendered reports, streamed ``.ctb`` bundles) must be
byte-identical to the same work done in-process.
"""

from __future__ import annotations

import io
import contextlib
import os

import pytest

from repro.server import protocol
from repro.server.client import Client
from repro.server.daemon import ReproServer, ServerConfig, start_server_thread
from repro.server.jobs import execute_experiment_job, execute_kernel_job
from repro.server.protocol import ServerError
from repro.server.session import Session, SessionQuota

SCALE = """
__kernel void scale(__global int* data, int n, int factor) {
    for (int i = 0; i < n; i++) {
        data[i] = data[i] * factor;
    }
}
"""

BROKEN = """
__kernel void broken(__global int* data) {
    data[0] = data[0] +
}
"""


@pytest.fixture(scope="module")
def server():
    handle = start_server_thread(ServerConfig(workers=0))
    yield handle
    handle.stop()


@pytest.fixture()
def client(server):
    with Client(server.address) as c:
        c.open_session()
        yield c


class TestProtocol:
    def test_parse_address_tcp(self):
        assert protocol.parse_address("127.0.0.1:7711") == \
            ("tcp", ("127.0.0.1", 7711))

    def test_parse_address_unix(self):
        assert protocol.parse_address("unix:/tmp/s.sock") == \
            ("unix", "/tmp/s.sock")

    @pytest.mark.parametrize("bad", ["", "nohost", "host:notaport", "unix:"])
    def test_parse_address_rejects(self, bad):
        with pytest.raises(ServerError):
            protocol.parse_address(bad)

    def test_request_response_round_trip(self):
        line = protocol.encode_request(7, "server.ping", {"a": 1})
        message = protocol.decode_line(line)
        assert message == {"id": 7, "method": "server.ping",
                           "params": {"a": 1}}
        response = protocol.decode_line(protocol.encode_response(7, {"ok": 1}))
        assert response == {"id": 7, "result": {"ok": 1}}

    def test_error_round_trip_keeps_code_and_data(self):
        error = ServerError(protocol.E_BUSY, "full", {"queue_depth": 3})
        message = protocol.decode_line(protocol.encode_error(9, error))
        assert message["error"]["code"] == "busy"
        assert message["error"]["data"] == {"queue_depth": 3}

    def test_decode_rejects_non_json(self):
        with pytest.raises(ServerError) as excinfo:
            protocol.decode_line(b"not json\n")
        assert excinfo.value.code == protocol.E_PARSE

    def test_segment_wire_round_trip(self):
        from repro.trace.columnar import Segment
        from repro.trace.schema import SchemaRegistry, TraceRecord

        registry = SchemaRegistry()
        schema = registry.ensure("t.wire", ("alpha", "beta"))
        records = [TraceRecord(schema="t.wire", ts=i, kernel="k", cu=0,
                               site=f"s{i}", values=(i, i * 10))
                   for i in range(5)]
        segment = Segment.from_records(schema, records)
        rebuilt = protocol.segment_from_wire(protocol.segment_to_wire(segment))
        assert rebuilt.payload_bytes() == segment.payload_bytes()
        assert [rebuilt.record(i) for i in range(5)] == records


class TestSession:
    def test_buffer_quota_enforced(self):
        session = Session("s1", SessionQuota(max_buffer_elems=10))
        session.create_buffer("a", 6)
        with pytest.raises(ServerError) as excinfo:
            session.create_buffer("b", 5)
        assert excinfo.value.code == protocol.E_QUOTA
        session.create_buffer("b", 4)                # exactly at the quota
        session.free_buffer("a")
        session.create_buffer("c", 6)                # freed space reusable

    def test_unknown_buffer_and_program(self):
        session = Session("s1")
        with pytest.raises(ServerError) as excinfo:
            session.read_buffer("nope")
        assert excinfo.value.code == protocol.E_NOT_FOUND
        with pytest.raises(ServerError):
            session.get_program("p9")

    def test_trace_retention_drops_oldest(self):
        from repro.trace.schema import TraceRecord

        session = Session("s1", SessionQuota(max_trace_records=4))
        schemas = (("t.r", ("v",), ""),)
        records = [TraceRecord(schema="t.r", ts=i, kernel="k", cu=0,
                               site="s", values=(i,)) for i in range(6)]
        session.add_records(schemas, records)
        assert [r.ts for r in session.records] == [2, 3, 4, 5]
        assert session.stats.trace_rows == 6
        assert session.stats.trace_rows_dropped == 2


class TestJobs:
    def test_kernel_job_matches_in_process_run(self):
        from repro.frontend.compiler import compile_source
        from repro.pipeline.fabric import Fabric

        result = execute_kernel_job(
            SCALE, "scale", args={"n": 8, "factor": 3},
            buffers={"data": {"size": 8, "fill": list(range(8))}})

        fabric = Fabric(keep_lsu_samples=True)
        program = compile_source(fabric, SCALE)
        fabric.memory.allocate("data", 8).fill(list(range(8)))
        engine = fabric.run_kernel(program.kernel("scale"),
                                   {"data": "data", "n": 8, "factor": 3})
        assert result["sim_now"] == fabric.sim.now
        assert result["buffers"]["data"] == [
            int(v) for v in fabric.memory.buffer("data").snapshot()]
        assert result["engine"]["iterations_retired"] == \
            engine.stats.iterations_retired
        assert set(result["lsu"]) == {
            f"{site}|{kind}" for site, kind in engine.lsus}

    def test_compile_error_is_structured_not_raised(self):
        result = execute_kernel_job(BROKEN, "broken",
                                    buffers={"data": {"size": 1}})
        error = result["error"]
        assert error["code"] == protocol.E_COMPILE
        assert error["data"]["line"] == 4
        assert error["data"]["column"] >= 1

    def test_bad_launch_is_structured_run_error(self):
        result = execute_kernel_job(SCALE, "scale", args={"n": 1})
        assert result["error"]["code"] == "run_error"
        assert "data" in result["error"]["message"]

    def test_experiment_job_renders_like_registry(self):
        from repro.experiments import registry

        result = execute_experiment_job("fig2", params={"n": 4, "num": 6})
        assert result["rendered"] == registry.run_experiment("fig2", n=4,
                                                             num=6)

    def test_experiment_job_unknown_name(self):
        result = execute_experiment_job("fig99")
        assert result["error"]["code"] == protocol.E_NOT_FOUND


class TestServerRoundTrip:
    def test_ping_and_stats(self, client):
        assert client.ping() == {"pong": True}
        stats = client.stats()
        assert stats["sessions"]["open"] >= 1
        assert {"hits", "misses", "evictions"} <= set(stats["cache"])
        assert stats["jobs"]["mode"] == "inline"

    def test_compile_reports_cache_and_kernels(self, client):
        source = SCALE + "// cache-probe"
        first = client.compile(source)
        again = client.compile(source)
        assert first["cache"] == "miss"
        assert again["cache"] == "hit"
        assert first["kernels"] == {"scale": "single-task"}
        assert first["program"] != again["program"]

    def test_compile_error_has_position(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.compile(BROKEN)
        assert excinfo.value.code == protocol.E_COMPILE
        assert excinfo.value.data["line"] == 4

    def test_kernel_run_returns_buffers_and_stats(self, client):
        program = client.compile(SCALE)["program"]
        result = client.run_kernel(
            program=program, kernel="scale", args={"n": 8, "factor": 3},
            buffers={"data": {"size": 8, "fill": [1, 2, 3, 4, 5, 6, 7, 8]}})
        assert result["buffers"]["data"] == [3, 6, 9, 12, 15, 18, 21, 24]
        assert result["sim_now"] > 0
        assert result["engine"]["iterations_retired"] == 1
        assert result["memory"]["loads"] == 8
        assert result["memory"]["stores"] == 8

    def test_kernel_run_matches_in_process(self, client):
        """The server determinism contract, end to end."""
        remote = client.run_kernel(
            source=SCALE, kernel="scale", args={"n": 6, "factor": 5},
            buffers={"data": {"size": 6, "fill": [9, 8, 7, 6, 5, 4]}})
        local = execute_kernel_job(
            SCALE, "scale", args={"n": 6, "factor": 5},
            buffers={"data": {"size": 6, "fill": [9, 8, 7, 6, 5, 4]}})
        local["trace"] = {"records": 0}
        assert remote == local

    def test_session_buffers_persist_and_write_back(self, client):
        program = client.compile(SCALE)["program"]
        client.call("buffer.create",
                    {"name": "x", "size": 4, "fill": [5, 6, 7, 8]})
        client.run_kernel(program=program, kernel="scale",
                          args={"n": 4, "factor": 10},
                          buffers={"data": {"session": "x"}})
        values = client.call("buffer.read", {"name": "x"})["values"]
        assert values == [50, 60, 70, 80]
        client.call("buffer.free", {"name": "x"})
        with pytest.raises(ServerError) as excinfo:
            client.call("buffer.read", {"name": "x"})
        assert excinfo.value.code == protocol.E_NOT_FOUND

    def test_enqueue_wait_and_completion_notification(self, client):
        program = client.compile(SCALE)["program"]
        job = client.enqueue(program=program, kernel="scale",
                             args={"n": 4, "factor": 2},
                             buffers={"data": {"size": 4, "fill": [1] * 4}})
        result = client.wait(job["job"])
        assert result["buffers"]["data"] == [2, 2, 2, 2]
        # The push notification for the same job is stashed by the client.
        client.ping()       # drain anything still in flight
        done = client.completions.get(job["job"])
        assert done is not None and done["ok"]

    def test_trace_streams_and_saves_byte_identical(self, client, tmp_path):
        """Streamed segments == a local ColumnarSink capture, byte for byte."""
        from repro.trace.columnar import ColumnarSink
        from repro.trace.hub import TraceHub

        client.subscribe()
        client.run_experiment("fig2", params={"n": 5, "num": 7}, trace=True)
        streamed = tmp_path / "streamed.ctb"
        rows = client.save_trace(str(streamed))
        assert rows > 0

        local = tmp_path / "local.ctb"
        hub = TraceHub()
        hub.attach(ColumnarSink(str(local), hub.registry))
        from repro.experiments import registry
        registry.run_experiment("fig2", hub=hub, n=5, num=7)
        hub.close()
        assert streamed.read_bytes() == local.read_bytes()

    def test_trace_query_filters_server_side(self, client):
        client.run_experiment("fig2", params={"n": 4, "num": 6}, trace=True)
        result = client.query(schema="run.span")
        assert result["rows"]
        assert all(row["schema"] == "run.span" for row in result["rows"])
        aggregate = client.query(schema="order.record", agg="seq",
                                 by="kernel")
        assert aggregate["aggregate"]
        for entry in aggregate["aggregate"].values():
            assert {"count", "min", "max", "total", "mean"} == set(entry)

    def test_trace_query_bad_field_is_bad_request(self, client):
        client.run_experiment("fig2", params={"n": 4, "num": 6}, trace=True)
        with pytest.raises(ServerError) as excinfo:
            client.query(schema="run.span", agg="nope")
        assert excinfo.value.code == protocol.E_BAD_REQUEST

    def test_trace_query_engine_parity(self, client):
        client.run_experiment("fig2", params={"n": 4, "num": 6}, trace=True)
        vector = client.query(schema="run.span", engine="vector")
        reference = client.query(schema="run.span", engine="reference")
        assert vector == reference
        with pytest.raises(ServerError) as excinfo:
            client.query(engine="turbo")
        assert excinfo.value.code == protocol.E_BAD_REQUEST

    def test_store_query_engine_parity(self, client, tmp_path):
        client.subscribe()
        client.run_experiment("fig2", params={"n": 4, "num": 6}, trace=True)
        path = str(tmp_path / "parity.ctb")
        client.save_trace(path)
        opts = {"path": path, "schema": "order.record",
                "agg": "seq", "by": "kernel"}
        vector = client.call("trace.store_query",
                             {**opts, "engine": "vector"})
        reference = client.call("trace.store_query",
                                {**opts, "engine": "reference"})
        assert vector["lines"] == reference["lines"]

    def test_store_rendering_matches_cli(self, client, tmp_path):
        from repro.cli import format_trace_info, format_trace_query
        from repro.trace.columnar import ColumnarStore

        client.subscribe()
        client.run_experiment("fig2", params={"n": 4, "num": 6}, trace=True)
        path = str(tmp_path / "t.ctb")
        client.save_trace(path)
        store = ColumnarStore.load(path)
        assert client.call("trace.store_info", {"path": path})["lines"] == \
            format_trace_info(store, path)
        opts = {"schema": "order.record", "limit": 5}
        assert client.call("trace.store_query",
                           {"path": path, **opts})["lines"] == \
            format_trace_query(store, opts)

    def test_store_info_missing_path(self, client, tmp_path):
        with pytest.raises(ServerError) as excinfo:
            client.call("trace.store_info",
                        {"path": str(tmp_path / "absent.ctb")})
        assert excinfo.value.code == protocol.E_NOT_FOUND

    def test_unknown_method_lists_known(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.call("kernel.teleport")
        assert excinfo.value.code == protocol.E_UNKNOWN_METHOD
        assert "kernel.run" in excinfo.value.data["known"]

    def test_methods_require_session(self, server):
        with Client(server.address) as bare:
            with pytest.raises(ServerError) as excinfo:
                bare.run_kernel(source=SCALE, kernel="scale")
            assert excinfo.value.code == protocol.E_NO_SESSION

    def test_one_session_per_connection(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.call("session.open")
        assert excinfo.value.code == protocol.E_BAD_REQUEST

    def test_close_returns_session_stats(self, server):
        with Client(server.address) as c:
            c.open_session()
            c.run_kernel(source=SCALE, kernel="scale",
                         args={"n": 2, "factor": 2},
                         buffers={"data": {"size": 2}})
            summary = c.close_session()
            assert summary["stats"]["jobs_completed"] == 1
            assert summary["stats"]["cycles_total"] > 0


class TestBackpressure:
    SLOW = """
    __kernel void slow(__global int* out, int n) {
        int acc = 0;
        for (int i = 0; i < n; i++) {
            acc = acc + i;
            out[0] = acc;
        }
    }
    """

    def test_busy_error_is_structured_and_deterministic(self):
        handle = start_server_thread(
            ServerConfig(workers=0, session_queue_limit=1))
        try:
            with Client(handle.address) as c:
                c.open_session()
                program = c.compile(self.SLOW)["program"]
                job = c.enqueue(program=program, kernel="slow",
                                args={"n": 40000},
                                buffers={"out": {"size": 1}})
                with pytest.raises(ServerError) as excinfo:
                    c.run_kernel(program=program, kernel="slow",
                                 args={"n": 2},
                                 buffers={"out": {"size": 1}})
                assert excinfo.value.code == protocol.E_BUSY
                assert excinfo.value.data == {
                    "scope": "session", "queue_depth": 1, "queue_limit": 1}
                # The in-flight job still completes correctly.
                assert c.wait(job["job"])["buffers"]["out"] == [799980000]
                stats = c.stats()
                assert stats["jobs"]["busy_rejections"] == 1
        finally:
            handle.stop()

    def test_session_limit(self):
        handle = start_server_thread(ServerConfig(workers=0, max_sessions=1))
        try:
            with Client(handle.address) as first:
                first.open_session()
                with Client(handle.address) as second:
                    with pytest.raises(ServerError) as excinfo:
                        second.open_session()
                    assert excinfo.value.code == protocol.E_SESSION_LIMIT
        finally:
            handle.stop()


class TestServeCli:
    def test_serve_parser_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "7711", "--workers", "2",
             "--session-queue-limit", "4"])
        assert args.command == "serve"
        assert args.port == 7711
        assert args.workers == 2
        assert args.session_queue_limit == 4

    def test_run_server_flag_parsed(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "fig2", "--server", "127.0.0.1:7711"])
        assert args.server == "127.0.0.1:7711"
        assert build_parser().parse_args(["run", "fig2"]).server is None

    def test_trace_info_server_flag_parsed(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["trace", "info", "x.ctb", "--server", "unix:/tmp/s"])
        assert args.server == "unix:/tmp/s"

    def test_run_remote_stdout_and_bundle_byte_identical(self, server,
                                                         tmp_path):
        from repro import cli

        local_path = tmp_path / "local.ctb"
        remote_path = tmp_path / "remote.ctb"
        argv = ["run", "fig2", "--n", "5", "--num", "7"]

        local_out = io.StringIO()
        with contextlib.redirect_stdout(local_out):
            assert cli.main(argv + ["--trace-out", str(local_path)]) == 0
        remote_out = io.StringIO()
        with contextlib.redirect_stdout(remote_out):
            assert cli.main(argv + ["--trace-out", str(remote_path),
                                    "--server", server.address]) == 0
        assert (remote_out.getvalue()
                .replace(str(remote_path), str(local_path))
                == local_out.getvalue())
        assert local_path.read_bytes() == remote_path.read_bytes()

    def test_trace_tools_remote_byte_identical(self, server, tmp_path):
        from repro import cli

        path = tmp_path / "probe.ctb"
        with contextlib.redirect_stdout(io.StringIO()):
            assert cli.main(["run", "fig2", "--n", "4", "--num", "6",
                             "--trace-out", str(path)]) == 0
        for argv in (["trace", "info", str(path)],
                     ["trace", "query", str(path),
                      "--schema", "order.record", "--limit", "3"],
                     ["trace", "query", str(path), "--schema",
                      "order.record", "--agg", "seq", "--by", "kernel"]):
            local_out = io.StringIO()
            with contextlib.redirect_stdout(local_out):
                assert cli.main(argv) == 0
            remote_out = io.StringIO()
            with contextlib.redirect_stdout(remote_out):
                assert cli.main(argv + ["--server", server.address]) == 0
            assert remote_out.getvalue() == local_out.getvalue()

    def test_run_remote_bad_address_fails_cleanly(self, capsys):
        from repro import cli

        assert cli.main(["run", "fig2", "--server",
                         "127.0.0.1:1"]) == 2
        assert "error:" in capsys.readouterr().err


class TestWorkerPoolMode:
    def test_pool_run_matches_inline_run(self, tmp_path):
        """Worker-process execution is byte-identical to inline execution."""
        handle = start_server_thread(ServerConfig(workers=2))
        try:
            with Client(handle.address) as c:
                c.open_session()
                c.subscribe()
                remote = c.run_kernel(
                    source=SCALE, kernel="scale", args={"n": 8, "factor": 3},
                    buffers={"data": {"size": 8,
                                      "fill": [1, 2, 3, 4, 5, 6, 7, 8]}},
                    trace=True)
                pool_path = tmp_path / "pool.ctb"
                c.save_trace(str(pool_path))
            local = execute_kernel_job(
                SCALE, "scale", args={"n": 8, "factor": 3},
                buffers={"data": {"size": 8,
                                  "fill": [1, 2, 3, 4, 5, 6, 7, 8]}},
                trace=True)
            records = local.pop("trace_records")
            schemas = local.pop("trace_schemas")
            local["trace"] = {"records": len(records)}
            assert remote == local

            from repro.trace.columnar import ColumnarStore
            from repro.trace.schema import SchemaRegistry

            registry = SchemaRegistry()
            for name, fields, doc in schemas:
                registry.ensure(name, tuple(fields), doc=doc)
            local_path = tmp_path / "inline.ctb"
            ColumnarStore.from_records(records, registry).save(
                str(local_path))
            assert pool_path.read_bytes() == local_path.read_bytes()
        finally:
            handle.stop()


class TestBinarySegmentStreaming:
    def _run_traced(self, client):
        client.subscribe()
        client.run_experiment("fig2", params={"n": 4, "num": 6}, trace=True)

    def test_negotiation_acked_and_default_on(self, server):
        with Client(server.address) as c:
            ack = c.open_session()
            assert ack["server"]["binary_segments"] is True
            assert ack["server"]["trace_flush_rows"] == 0
        with Client(server.address) as c:
            ack = c.open_session(binary_segments=False)
            assert ack["server"]["binary_segments"] is False

    def test_binary_and_base64_streams_byte_identical(self, server,
                                                      tmp_path):
        bundles = {}
        rows = {}
        for label, flag in (("binary", True), ("base64", False)):
            with Client(server.address) as c:
                c.open_session(binary_segments=flag)
                self._run_traced(c)
                assert c.segments
                path = tmp_path / f"{label}.ctb"
                rows[label] = c.save_trace(str(path))
                bundles[label] = path.read_bytes()
        assert rows["binary"] == rows["base64"] > 0
        assert bundles["binary"] == bundles["base64"]

    def test_trace_flush_rows_splits_streamed_segments(self, server,
                                                       tmp_path):
        with Client(server.address) as whole:
            whole.open_session()
            self._run_traced(whole)
            whole_path = tmp_path / "whole.ctb"
            whole_rows = whole.save_trace(str(whole_path))
            whole_count = len(whole.segments)
        with Client(server.address) as split:
            ack = split.open_session(trace_flush_rows=2)
            assert ack["server"]["trace_flush_rows"] == 2
            self._run_traced(split)
            assert all(s.rows <= 2 for s in split.segments)
            assert len(split.segments) > whole_count
            split_path = tmp_path / "split.ctb"
            split_rows = split.save_trace(str(split_path))
        # merge_segments stitches the fine-grained stream back into the
        # exact bundle an unsplit session (or a local capture) produces.
        assert split_rows == whole_rows
        assert split_path.read_bytes() == whole_path.read_bytes()
