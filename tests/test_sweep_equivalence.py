"""Serial/parallel equivalence: the sweep determinism contract.

The acceptance property for the sweep engine is that ``--workers N`` and
``--serial`` are indistinguishable from the merged outputs: per-point
values pickle identically, rendered reports match byte for byte, merged
``.ctb`` bundles are byte-identical, and trace queries over those
bundles return the same rows. These tests pin that for the §4
scalability grid and the Table 1 configurations, at the engine, the
experiment-module, and the CLI layer.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro import cli
from repro.experiments import scalability, table1
from repro.perf import harness
from repro.sweep import SweepPoint, SweepSpec, families, run_sweep

# Small-but-real grid: every point synthesizes AND simulates the
# instrumented matmul, so parallel workers do meaningful work.
GRID = dict(counts=(1, 2), depths=(256, 1024), simulate=True,
            sim_shape=(4, 6, 4))


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _per_key_identical(serial_outcome, parallel_outcome) -> None:
    serial_values = serial_outcome.value_map()
    parallel_values = parallel_outcome.value_map()
    assert list(serial_values) == list(parallel_values)
    for key in serial_values:
        assert pickle.dumps(serial_values[key]) == pickle.dumps(
            parallel_values[key]), f"point {key} diverged"


class TestScalabilityEquivalence:
    def test_engine_values_identical(self):
        spec = families.scalability_spec(
            counts=GRID["counts"], depths=GRID["depths"], simulate=True,
            sim_shape=GRID["sim_shape"])
        serial_outcome = run_sweep(spec, serial=True)
        parallel_outcome = run_sweep(spec, workers=2, chunk_size=1)
        serial_outcome.raise_if_failed()
        parallel_outcome.raise_if_failed()
        _per_key_identical(serial_outcome, parallel_outcome)

    def test_rendered_report_identical(self):
        serial_result = scalability.run(**GRID)
        parallel_result = scalability.run(workers=2, **GRID)
        assert serial_result.render() == parallel_result.render()
        assert "Cycles" in serial_result.render()   # dynamics present

    def test_trace_bundles_byte_identical_and_query_equal(self, tmp_path):
        from repro.trace.columnar import ColumnarStore
        from repro.trace.query import TraceQuery

        spec = families.scalability_spec(
            counts=GRID["counts"], depths=GRID["depths"], simulate=True,
            sim_shape=GRID["sim_shape"])
        serial_path = str(tmp_path / "serial.ctb")
        parallel_path = str(tmp_path / "parallel.ctb")
        run_sweep(spec, serial=True,
                  trace_path=serial_path).raise_if_failed()
        run_sweep(spec, workers=2, chunk_size=1,
                  trace_path=parallel_path).raise_if_failed()

        with open(serial_path, "rb") as handle:
            serial_bytes = handle.read()
        with open(parallel_path, "rb") as handle:
            parallel_bytes = handle.read()
        assert serial_bytes == parallel_bytes

        serial_store = ColumnarStore.load(serial_path)
        parallel_store = ColumnarStore.load(parallel_path)
        assert serial_store.schemas() == parallel_store.schemas()
        for schema in serial_store.schemas():
            serial_rows = TraceQuery(serial_store).schema(schema).rows()
            parallel_rows = TraceQuery(parallel_store).schema(schema).rows()
            assert serial_rows == parallel_rows


class TestTable1Equivalence:
    def test_engine_values_identical(self):
        spec = families.table1_spec(depth=256)
        serial_outcome = run_sweep(spec, serial=True)
        parallel_outcome = run_sweep(spec, workers=2, chunk_size=1)
        serial_outcome.raise_if_failed()
        parallel_outcome.raise_if_failed()
        _per_key_identical(serial_outcome, parallel_outcome)

    def test_rendered_report_identical(self):
        serial_result = table1.run(depth=256)
        parallel_result = table1.run(depth=256, workers=2)
        assert serial_result.render() == parallel_result.render()


class TestCLIEquivalence:
    """``repro-fpga sweep --serial`` and ``--workers 2`` print the same
    report (telemetry goes to stderr, so stdout is the contract)."""

    @pytest.mark.parametrize("family", ["scalability", "table1"])
    def test_stdout_identical(self, family, capsys):
        assert cli.main(["sweep", family, "--serial"]) == 0
        serial_stdout = capsys.readouterr().out
        assert cli.main(["sweep", family, "--workers", "2"]) == 0
        parallel_stdout = capsys.readouterr().out
        assert serial_stdout == parallel_stdout
        assert serial_stdout.strip()

    def test_trace_out_identical(self, tmp_path, capsys):
        serial_path = tmp_path / "serial.ctb"
        parallel_path = tmp_path / "parallel.ctb"
        grid = ["--counts", "1", "--counts", "2", "--depths", "256"]
        assert cli.main(["sweep", "scalability", "--serial", "--simulate",
                         *grid, "--trace-out", str(serial_path)]) == 0
        assert cli.main(["sweep", "scalability", "--workers", "2",
                         "--simulate", *grid, "--trace-out",
                         str(parallel_path)]) == 0
        capsys.readouterr()
        assert serial_path.read_bytes() == parallel_path.read_bytes()


class TestRepeatFamilies:
    def test_sec52_repeats_identical_serial_vs_parallel(self):
        spec = families.repeat_spec("sec52", repeats=2)
        serial_outcome = run_sweep(spec, serial=True)
        parallel_outcome = run_sweep(spec, workers=2, chunk_size=1)
        _per_key_identical(serial_outcome, parallel_outcome)
        rendered = families.render_outcome(parallel_outcome)
        assert "identical: True" in rendered


# -- perf-suite aggregation --------------------------------------------------

_FAKE_SEQUENCE = [30.0, 10.0, 20.0]
_FAKE_CALLS = {"count": 0}


def _fake_bench():
    value = _FAKE_SEQUENCE[_FAKE_CALLS["count"] % len(_FAKE_SEQUENCE)]
    _FAKE_CALLS["count"] += 1
    return value, {"call": _FAKE_CALLS["count"]}


class TestSuiteAggregation:
    def test_median_of_three_reported(self, monkeypatch):
        _FAKE_CALLS["count"] = 0
        monkeypatch.setitem(harness.BENCHMARKS, "fake_bench",
                            (_fake_bench, "widgets/s", 3))
        report = harness.run_suite(names=["fake_bench"], log=lambda _: None)
        entry = report["results"]["fake_bench"]
        assert entry["value"] == 20.0            # median of 30, 10, 20
        assert entry["aggregate"] == "median"
        assert sorted(entry["values"]) == [10.0, 20.0, 30.0]
        assert entry["repeats"] == 3

    def test_sharded_repeats_match_registry(self, monkeypatch):
        import multiprocessing
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("sharded repeat test needs fork start method")
        _FAKE_CALLS["count"] = 0
        monkeypatch.setitem(harness.BENCHMARKS, "fake_bench",
                            (_fake_bench, "widgets/s", 3))
        # Forked workers inherit the patched registry; each repeat runs in
        # a fresh-forked or warm worker whose counter starts from 0 or
        # advances independently — every observed value must come from the
        # deterministic sequence, and the median must be one of them.
        report = harness.run_suite(names=["fake_bench"], log=lambda _: None,
                                   workers=2)
        entry = report["results"]["fake_bench"]
        assert len(entry["values"]) == 3
        assert set(entry["values"]) <= set(_FAKE_SEQUENCE)
        assert entry["value"] in entry["values"]


@pytest.mark.skipif(_cpus() < 4,
                    reason="process-level speedup needs >= 4 CPUs")
class TestSpeedupGate:
    def test_sweep_grid_speedup_at_4_workers(self):
        value, detail = harness.bench_sweep_scalability_grid()
        assert detail["results_identical"]
        assert detail["workers"] == 4
        assert detail["speedup"] >= 2.0, (
            f"sweep speedup {detail['speedup']:.2f}x < 2x "
            f"(serial {detail['serial_elapsed_s']:.2f}s, "
            f"parallel {detail['elapsed_s']:.2f}s)")
        assert value > 0
