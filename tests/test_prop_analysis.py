"""Property-based tests on analysis invariants (timelines, gantt, stats)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis.gantt import concurrency_profile, pipelining_speedup
from repro.analysis.latency import summarize
from repro.analysis.timeline import event_rate_timeline, occupancy_timeline
from repro.core.stall_monitor import LatencySample

_lifetimes = st.lists(
    st.tuples(st.integers(0, 500), st.integers(1, 200)).map(
        lambda pair: (pair[0], pair[0] + pair[1])),
    min_size=1, max_size=30)


def _samples(lifetimes):
    return [LatencySample(start_cycle=start, end_cycle=end,
                          start_value=0, end_value=0)
            for start, end in lifetimes]


class TestOccupancyInvariants:
    @given(lifetimes=_lifetimes,
           bin_width=st.sampled_from([1, 7, 16, 64]))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_integral_equals_total_busy_time(self, lifetimes,
                                                       bin_width):
        """Σ(bin_occupancy × bin_width) == Σ lifetimes, regardless of binning."""
        samples = _samples(lifetimes)
        timeline = occupancy_timeline(samples, bin_width=bin_width)
        integral = sum(timeline.values) * bin_width
        total_busy = sum(end - start for start, end in lifetimes)
        assert abs(integral - total_busy) < 1e-6

    @given(lifetimes=_lifetimes)
    @settings(max_examples=60, deadline=None)
    def test_event_counts_conserved(self, lifetimes):
        entries = [{"timestamp": start} for start, _ in lifetimes]
        timeline = event_rate_timeline(entries, bin_width=16)
        assert sum(timeline.values) == len(entries)


class TestGanttInvariants:
    @given(lifetimes=_lifetimes)
    @settings(max_examples=60, deadline=None)
    def test_concurrency_profile_starts_and_ends_at_zero(self, lifetimes):
        tagged = [(index, start, end)
                  for index, (start, end) in enumerate(lifetimes)]
        profile = concurrency_profile(tagged)
        assert profile[-1][1] == 0
        assert all(level >= 0 for _, level in profile)

    @given(lifetimes=_lifetimes)
    @settings(max_examples=60, deadline=None)
    def test_speedup_at_least_serial(self, lifetimes):
        tagged = [(index, start, end)
                  for index, (start, end) in enumerate(lifetimes)]
        assert pipelining_speedup(tagged) > 0


class TestStatsInvariants:
    @given(lifetimes=_lifetimes)
    @settings(max_examples=60, deadline=None)
    def test_percentiles_ordered(self, lifetimes):
        stats = summarize(_samples(lifetimes))
        assert (stats.minimum <= stats.p50 <= stats.p95 <= stats.maximum)
        assert stats.minimum <= stats.mean <= stats.maximum
