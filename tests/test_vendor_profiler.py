"""Tests for the vendor-profiler baseline (§6 comparison)."""

from __future__ import annotations

import pytest

from repro.core.stall_monitor import StallMonitor
from repro.core.vendor_profiler import VendorProfiler
from repro.errors import ReproError
from repro.kernels.matmul import MatMulKernel, allocate_matmul_buffers
from repro.pipeline.fabric import Fabric


def _run_matmul(fabric, monitor=None):
    kernel = MatMulKernel(stall_monitor=monitor)
    allocate_matmul_buffers(fabric, 4, 8, 4)
    return fabric.run_kernel(kernel, {"rows_a": 4, "col_a": 8, "col_b": 4})


class TestAggregateCounters:
    def test_lsu_counters_accumulate(self, fabric):
        profiler = VendorProfiler(fabric)
        engine = _run_matmul(fabric)
        report = profiler.report(engine)
        loads = [c for c in report.lsus if c.kind == "load"]
        assert sum(c.accesses for c in loads) == 2 * 4 * 8 * 4
        assert all(c.mean_latency_cycles > 0 for c in loads)

    def test_busiest_site_identified(self, fabric):
        profiler = VendorProfiler(fabric)
        engine = _run_matmul(fabric)
        busiest = profiler.report(engine).busiest_site()
        assert busiest is not None
        assert busiest.kind == "load"

    def test_bandwidth_accounting(self, fabric):
        profiler = VendorProfiler(fabric)
        engine = _run_matmul(fabric)
        report = profiler.report(engine)
        assert report.total_bytes == (2 * 4 * 8 * 4 + 4 * 4) * 8  # loads+stores
        assert report.buffer_bandwidth["data_a"] > 0

    def test_window_is_profiling_span(self, fabric):
        fabric.advance(100)
        profiler = VendorProfiler(fabric)
        engine = _run_matmul(fabric)
        report = profiler.report(engine)
        assert report.window_cycles == fabric.sim.now - 100

    def test_requires_engines(self, fabric):
        with pytest.raises(ReproError):
            VendorProfiler(fabric).report()

    def test_render(self, fabric):
        profiler = VendorProfiler(fabric)
        engine = _run_matmul(fabric)
        text = profiler.report(engine).render()
        assert "Vendor profiler report" in text
        assert "bandwidth by buffer" in text


class TestChannelStallCounters:
    def test_channel_stalls_visible(self, fabric):
        channel = fabric.channels.declare("c", depth=1)

        def producer():
            for value in range(4):
                yield from channel.write(value)
        def slow_consumer():
            for _ in range(4):
                yield fabric.sim.timeout(10)
                yield from channel.read()
        fabric.sim.process(producer())
        fabric.sim.process(slow_consumer())
        profiler = VendorProfiler(fabric)
        fabric.advance(100)
        report = profiler.report_channels_only()
        counters = {c.name: c for c in report}
        assert counters["c"].write_stall_cycles > 0


class TestComparisonWithIBuffer:
    def test_aggregate_mean_matches_trace_mean_but_loses_detail(self, fabric):
        """The key §6 claim: same aggregate truth, no per-event insight."""
        monitor = StallMonitor(fabric, sites=2, depth=512)
        profiler = VendorProfiler(fabric)
        engine = _run_matmul(fabric, monitor)

        samples = [s.latency for s in monitor.latencies(0, 1)]
        report = profiler.report(engine)
        def line_of(counter):
            _, _, tail = counter.site.rpartition("@L")
            return int(tail) if tail.isdigit() else 1 << 30
        a_load = min((c for c in report.lsus if c.kind == "load"), key=line_of)

        # Aggregates agree...
        assert a_load.accesses == len(samples)
        assert a_load.mean_latency_cycles == pytest.approx(
            sum(samples) / len(samples))
        assert a_load.max_latency_cycles == max(samples)
        # ...but only the ibuffer trace has per-event timestamps/order:
        assert not hasattr(a_load, "samples")
        assert len(set(samples)) > 1   # real distribution, flattened by the baseline
