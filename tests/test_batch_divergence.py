"""Pin the batch engine's fallback machinery: every bail/abort reason,
the ``engine.batch`` stats object, and the batch trace records.

The equivalence property (tests/test_prop_batch_equivalence.py) proves
fallbacks are *correct*; this module proves they happen for the *right
reason* — a silent fallback on a convergent kernel would erase the whole
point of the batch tier, and a silent table execution of a divergent
kernel would be a soundness bug the property might miss if timings
happened to coincide.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AddressError, ProcessError
from repro.frontend import compile_source, program_cache_clear
from repro.kernels.vecadd import VecAddKernel
from repro.pipeline.fabric import Fabric
from repro.pipeline.ops import ALL_OPS
from repro.trace import TraceHub

_CONVERGENT = """
__kernel void conv(__global int* in, __global int* out, int n) {
    int gid = get_global_id(0);
    out[gid] = in[gid] * 2 + n;
}
"""


def _run_source(source, kernel, n=8, executor="batch", fabric=None,
                extra_args=None):
    fabric = fabric or Fabric()
    program = compile_source(fabric, source)
    fabric.memory.allocate("IN", n).fill(np.arange(n) + 1)
    fabric.memory.allocate("OUT", n)
    args = {"in": "IN", "out": "OUT", "n": n, "__global_size": n}
    if extra_args:
        args.update(extra_args)
    engine = fabric.run_kernel(program.kernel(kernel), args,
                               executor=executor)
    return fabric, engine


class TestTableMode:
    def test_convergent_kernel_runs_in_table_mode(self):
        program_cache_clear()
        hub = TraceHub()
        fabric, engine = _run_source(_CONVERGENT, "conv",
                                     fabric=Fabric(trace=hub))
        outcome = engine.batch
        assert outcome.mode == "table"
        assert outcome.reason == ""
        assert outcome.rows == 8
        assert outcome.ops > 0
        assert outcome.divergence == 0
        assert list(fabric.memory.buffer("OUT").snapshot()) == \
            [(i + 1) * 2 + 8 for i in range(8)]
        launches = [r for r in hub.records if r.schema == "batch.launch"]
        assert len(launches) == 1
        assert launches[0].values == (1, outcome.rows, outcome.ops)
        assert launches[0].site == ""
        assert hub.count("batch.divergence") == 0


class TestStaticBail:
    """Reasons known before any work-item executes (no divergence stat)."""

    def _assert_static_fallback(self, fabric, engine, reason):
        assert engine.batch.mode == "fallback"
        assert engine.batch.reason == reason
        assert engine.batch.divergence == 0
        hub = fabric.trace
        launches = [r for r in hub.records if r.schema == "batch.launch"]
        assert len(launches) == 1
        assert launches[0].site == reason
        assert launches[0].values[0] == 0          # mode=fallback
        assert hub.count("batch.divergence") == 0

    def test_python_ir_kernel_has_no_plan(self):
        hub = TraceHub()
        fabric = Fabric(trace=hub)
        for name in ("a", "b", "c"):
            fabric.memory.allocate(name, 8).fill(np.arange(8))
        engine = fabric.run_kernel(VecAddKernel(), {"n": 8},
                                   executor="batch")
        self._assert_static_fallback(
            fabric, engine, "Python-IR kernel (no op-stream plan)")
        assert list(fabric.memory.buffer("c").snapshot()) == \
            [2 * i for i in range(8)]

    def test_barrier_bails_statically(self):
        program_cache_clear()
        source = """
        __kernel void k(__global int* in, __global int* out, int n) {
            int gid = get_global_id(0);
            int x = in[gid];
            barrier(CLK_GLOBAL_MEM_FENCE);
            out[gid] = x;
        }
        """
        fabric, engine = _run_source(source, "k", fabric=Fabric(trace=TraceHub()))
        self._assert_static_fallback(fabric, engine, "work-group barrier")

    def test_local_memory_bails_statically(self):
        program_cache_clear()
        source = """
        __kernel void k(__global int* in, __global int* out, int n) {
            __local int stage[8];
            int gid = get_global_id(0);
            stage[gid] = in[gid];
            out[gid] = stage[gid];
        }
        """
        fabric, engine = _run_source(source, "k", fabric=Fabric(trace=TraceHub()))
        self._assert_static_fallback(fabric, engine, "__local memory")

    def test_concurrent_simulator_activity_bails(self):
        program_cache_clear()
        hub = TraceHub()
        fabric = Fabric(trace=hub)
        sim = fabric.sim

        def ticker():
            for _ in range(200):
                yield sim.timeout(1)

        sim.process(ticker())
        fabric2, engine = _run_source(_CONVERGENT, "conv", fabric=fabric)
        self._assert_static_fallback(
            fabric, engine, "concurrent simulator activity")


class TestDynamicDivergence:
    """Aborts discovered *during* Phase A — these bump ``divergence`` and
    emit one ``batch.divergence`` record alongside the fallback launch."""

    def _assert_divergent_fallback(self, fabric, engine, reason, rows=8):
        outcome = engine.batch
        assert outcome.mode == "fallback"
        assert outcome.reason == reason
        assert outcome.rows == rows
        assert outcome.ops > 0                      # plan existed
        assert outcome.divergence == 1
        hub = fabric.trace
        divergences = [r for r in hub.records
                       if r.schema == "batch.divergence"]
        assert len(divergences) == 1
        assert divergences[0].site == reason
        assert divergences[0].values == (rows,)
        launches = [r for r in hub.records if r.schema == "batch.launch"]
        assert len(launches) == 1
        assert launches[0].values == (0, rows, outcome.ops)

    def test_divergent_branch_falls_back(self):
        program_cache_clear()
        source = """
        __kernel void k(__global int* in, __global int* out, int n) {
            int gid = get_global_id(0);
            if (gid % 2 == 0) {
                out[gid] = in[gid];
            } else {
                out[gid] = -in[gid];
            }
        }
        """
        fabric, engine = _run_source(source, "k", fabric=Fabric(trace=TraceHub()))
        self._assert_divergent_fallback(fabric, engine,
                                        "control-flow divergence")
        assert list(fabric.memory.buffer("OUT").snapshot()) == \
            [(i + 1) if i % 2 == 0 else -(i + 1) for i in range(8)]

    def test_read_after_write_hazard_falls_back(self):
        program_cache_clear()
        source = """
        __kernel void k(__global int* in, __global int* out, int n) {
            int gid = get_global_id(0);
            out[gid] = in[gid] + 1;
            int check = out[gid];
            out[gid] = check * 2;
        }
        """
        fabric, engine = _run_source(source, "k", fabric=Fabric(trace=TraceHub()))
        self._assert_divergent_fallback(fabric, engine,
                                        "read-after-write hazard")
        assert list(fabric.memory.buffer("OUT").snapshot()) == \
            [(i + 2) * 2 for i in range(8)]

    def test_write_after_read_hazard_falls_back(self):
        program_cache_clear()
        source = """
        __kernel void k(__global int* in, __global int* out, int n) {
            int gid = get_global_id(0);
            int seed = in[0];
            in[gid] = seed + gid;
            out[gid] = seed;
        }
        """
        fabric, engine = _run_source(source, "k", fabric=Fabric(trace=TraceHub()))
        self._assert_divergent_fallback(fabric, engine,
                                        "write-after-read hazard")
        assert list(fabric.memory.buffer("IN").snapshot()) == \
            [1 + i for i in range(8)]

    def test_out_of_range_index_falls_back_to_real_address_error(self):
        """Phase A sees the wild index, aborts, and the fallback rerun
        raises the same AddressError the reference executor would."""
        program_cache_clear()
        source = """
        __kernel void k(__global int* in, __global int* out, int n) {
            int gid = get_global_id(0);
            out[gid + n] = in[gid];
        }
        """
        with pytest.raises(ProcessError) as exc_info:
            _run_source(source, "k", fabric=Fabric(trace=TraceHub()))
        cause = exc_info.value.__cause__
        while cause is not None and not isinstance(cause, AddressError):
            cause = cause.__cause__
        assert isinstance(cause, AddressError)
        assert "index 8 out of range [0, 8)" in str(exc_info.value)


class TestOpCoverage:
    """Every pipeline op class must have a declared batch disposition.

    When someone adds a new op to ALL_OPS, this test fails until they
    decide — and record here — whether the batch planner tables it,
    statically bails on it, or can never see it (Python-IR-only ops,
    which fall under the no-plan fallback).
    """

    DISPOSITION = {
        # Tabled: compiled into BLoad/BStore/BPure plan nodes.
        "Load": "table",
        "Store": "table",
        "Compute": "table",
        # Static bail: _batch_bail_reason rejects the kernel up front.
        "LoadLocal": "static-bail (__local memory)",
        "StoreLocal": "static-bail (__local memory)",
        "ReadChannel": "static-bail (channel operation)",
        "WriteChannel": "static-bail (channel operation)",
        "Call": "static-bail (HDL library call)",
        "Barrier": "static-bail (work-group barrier)",
        # Python-IR only: never emitted by the codegen op stream, so any
        # kernel producing them has no plan at all.
        "MemFence": "no-plan (Python-IR kernels only)",
        "CollectReduction": "no-plan (Python-IR kernels only)",
        "CycleBoundary": "no-plan (Python-IR kernels only)",
    }

    def test_every_op_has_a_disposition(self):
        assert set(self.DISPOSITION) == {cls.__name__ for cls in ALL_OPS}
