"""Tests for the diff tooling and the downstream testing helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.diff import (
    LatencyDiff,
    assert_traces_equal,
    diff_latencies,
    diff_traces,
)
from repro.core.stall_monitor import LatencySample
from repro.errors import TraceDecodeError
from repro.memory.global_memory import GlobalMemoryConfig
from repro.testing import MonitoredRun, make_fabric, run_monitored_matmul


def _samples(values):
    return [LatencySample(start_cycle=0, end_cycle=value,
                          start_value=0, end_value=0) for value in values]


class TestLatencyDiff:
    def test_regression_detected(self):
        diff = diff_latencies(_samples([100] * 10), _samples([150] * 10))
        assert diff.regressed
        assert diff.mean_delta_pct == pytest.approx(50.0)
        assert "REGRESSED" in diff.render()

    def test_improvement_reported(self):
        diff = diff_latencies(_samples([100] * 10), _samples([80] * 10))
        assert not diff.regressed
        assert "improved" in diff.render()

    def test_noise_band_is_unchanged(self):
        diff = diff_latencies(_samples([100] * 10), _samples([101] * 10))
        assert not diff.regressed
        assert "unchanged" in diff.render()


class TestTraceDiff:
    def test_identical_up_to_timestamps(self):
        before = [{"timestamp": 1, "value": 5}, {"timestamp": 2, "value": 6}]
        after = [{"timestamp": 9, "value": 5}, {"timestamp": 11, "value": 6}]
        assert diff_traces(before, after) == []
        assert_traces_equal(before, after)   # must not raise

    def test_content_change_reported(self):
        before = [{"timestamp": 1, "value": 5}]
        after = [{"timestamp": 1, "value": 7}]
        differences = diff_traces(before, after)
        assert len(differences) == 1
        with pytest.raises(TraceDecodeError, match="traces differ"):
            assert_traces_equal(before, after)

    def test_count_change_reported(self):
        differences = diff_traces([{"timestamp": 1, "value": 1}], [])
        assert "entry count changed" in differences[0]

    def test_diff_truncation(self):
        before = [{"timestamp": 0, "value": i} for i in range(40)]
        after = [{"timestamp": 0, "value": i + 1} for i in range(40)]
        differences = diff_traces(before, after)
        assert differences[-1].startswith("...")


class TestTestingHelpers:
    def test_make_fabric_fills_buffers(self):
        fabric = make_fabric(src=np.arange(8), dst=8)
        assert list(fabric.memory.buffer("src").snapshot()) == list(range(8))
        assert fabric.memory.buffer("dst").size == 8

    def test_run_monitored_matmul_bundle(self):
        run = run_monitored_matmul(rows_a=2, col_a=4, col_b=2, depth=64)
        assert isinstance(run, MonitoredRun)
        assert run.cycles > 0
        assert len(run.latencies) == 2 * 4 * 2

    def test_regression_workflow_end_to_end(self):
        """The intended CI pattern: same design, slower memory -> flagged."""
        fast = run_monitored_matmul(memory_config=GlobalMemoryConfig())
        slow = run_monitored_matmul(memory_config=GlobalMemoryConfig(
            pipe_latency=120))
        diff = diff_latencies(fast.latencies, slow.latencies)
        assert diff.regressed

    def test_determinism_workflow(self):
        """Same config twice -> traces identical including timestamps."""
        first = run_monitored_matmul(rows_a=2, col_a=4, col_b=2, depth=64)
        second = run_monitored_matmul(rows_a=2, col_a=4, col_b=2, depth=64)
        assert_traces_equal(first.monitor.read_site(0),
                            second.monitor.read_site(0),
                            ignore_fields=())
