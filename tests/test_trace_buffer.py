"""Unit tests for entry layouts and the trace buffer."""

from __future__ import annotations

import pytest

from repro.core.commands import SamplingMode
from repro.core.trace_buffer import (
    EntryLayout,
    RAW_LAYOUT,
    STALL_LAYOUT,
    TraceBuffer,
    WATCH_LAYOUT,
    decode_words,
)
from repro.errors import IBufferError, TraceDecodeError
from repro.memory.local_memory import LocalMemory


def _buffer(sim, depth=4, layout=RAW_LAYOUT, mode=SamplingMode.LINEAR):
    memory = LocalMemory(sim, "trace", depth * layout.words_per_entry)
    return TraceBuffer(memory, layout, depth, mode)


class TestEntryLayout:
    def test_words_per_entry_includes_valid(self):
        assert RAW_LAYOUT.words_per_entry == 3
        assert STALL_LAYOUT.words_per_entry == 4
        assert WATCH_LAYOUT.words_per_entry == 5

    def test_empty_layout_rejected(self):
        with pytest.raises(IBufferError):
            EntryLayout(())

    def test_duplicate_fields_rejected(self):
        with pytest.raises(IBufferError):
            EntryLayout(("a", "a"))

    def test_explicit_valid_field_rejected(self):
        with pytest.raises(IBufferError):
            EntryLayout(("valid", "x"))

    def test_pack_unpack_roundtrip(self):
        entry = {"timestamp": 12, "value": 34}
        words = RAW_LAYOUT.pack(entry)
        assert words[0] == 1
        assert RAW_LAYOUT.unpack(words) == entry

    def test_pack_missing_field_rejected(self):
        with pytest.raises(TraceDecodeError):
            RAW_LAYOUT.pack({"timestamp": 1})

    def test_unpack_invalid_slot_returns_none(self):
        assert RAW_LAYOUT.unpack([0, 0, 0]) is None

    def test_unpack_wrong_length_rejected(self):
        with pytest.raises(TraceDecodeError):
            RAW_LAYOUT.unpack([1, 2])


class TestLinearMode:
    def test_writes_until_full_then_drops(self, sim):
        buffer = _buffer(sim, depth=2)
        assert buffer.write({"timestamp": 1, "value": 10})
        assert buffer.write({"timestamp": 2, "value": 20})
        assert not buffer.write({"timestamp": 3, "value": 30})
        assert buffer.dropped == 1
        assert buffer.valid_entries == 2
        assert [e["value"] for e in buffer.entries()] == [10, 20]

    def test_reset_clears_everything(self, sim):
        buffer = _buffer(sim, depth=2)
        buffer.write({"timestamp": 1, "value": 1})
        buffer.reset()
        assert buffer.valid_entries == 0
        assert buffer.entries() == []
        assert buffer.write({"timestamp": 2, "value": 2})


class TestCyclicMode:
    def test_wraps_and_keeps_newest(self, sim):
        buffer = _buffer(sim, depth=3, mode=SamplingMode.CYCLIC)
        for index in range(5):
            assert buffer.write({"timestamp": index, "value": index * 10})
        values = [e["value"] for e in buffer.entries()]
        assert values == [20, 30, 40]  # oldest two were overwritten

    def test_chronological_order_after_wrap(self, sim):
        buffer = _buffer(sim, depth=3, mode=SamplingMode.CYCLIC)
        for index in range(7):
            buffer.write({"timestamp": index, "value": index})
        stamps = [e["timestamp"] for e in buffer.entries()]
        assert stamps == sorted(stamps)

    def test_no_drops_in_cyclic_mode(self, sim):
        buffer = _buffer(sim, depth=2, mode=SamplingMode.CYCLIC)
        for index in range(10):
            assert buffer.write({"timestamp": index, "value": index})
        assert buffer.dropped == 0


class TestValidation:
    def test_zero_depth_rejected(self, sim):
        memory = LocalMemory(sim, "m", 8)
        with pytest.raises(IBufferError):
            TraceBuffer(memory, RAW_LAYOUT, 0)

    def test_undersized_memory_rejected(self, sim):
        memory = LocalMemory(sim, "m", 5)   # needs 4*3 = 12
        with pytest.raises(IBufferError):
            TraceBuffer(memory, RAW_LAYOUT, 4)

    def test_read_slot_bounds(self, sim):
        buffer = _buffer(sim, depth=2)
        with pytest.raises(IBufferError):
            buffer.read_slot(2)


class TestDecodeWords:
    def test_decodes_valid_skips_invalid(self):
        words = [1, 5, 50, 0, 0, 0, 1, 7, 70]
        entries = decode_words(words, RAW_LAYOUT)
        assert entries == [{"timestamp": 5, "value": 50},
                           {"timestamp": 7, "value": 70}]

    def test_misaligned_stream_rejected(self):
        with pytest.raises(TraceDecodeError):
            decode_words([1, 2], RAW_LAYOUT)
