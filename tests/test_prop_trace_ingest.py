"""Property tests: batch columnar ingest is equivalent to the reference path.

The tentpole's equivalence contract: for any event stream —
mixed/dynamic schemas, arbitrary labels and int64 payloads, mid-segment
flushes — a ``TraceHub(ingest="batch")`` must produce a byte-identical
``.ctb`` bundle, identical ``hub.counts``/``hub.records``, and identical
:class:`TraceQuery` rows to the retained ``ingest="reference"`` oracle.
The binary segment frames used by the server IPC must carry exactly the
bytes the base64 wire form does. The acceptance floor (>= 5x ingest
throughput) is gated at the end.

Example budget: ``TRACE_INGEST_EXAMPLES`` (default 60); CI runs a
deep sweep at 300.
"""

from __future__ import annotations

import json
import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server import protocol
from repro.trace import (
    ColumnarStore,
    SchemaRegistry,
    TraceQuery,
    TraceRecord,
    TraceSchema,
)
from repro.trace.columnar import ColumnarSink, Segment
from repro.trace.hub import TraceHub, TraceSink

MAX_EXAMPLES = int(os.environ.get("TRACE_INGEST_EXAMPLES", "60"))

_INT64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
_TS = st.integers(min_value=0, max_value=2 ** 48)
# A small pool forces dictionary-interning collisions; the text draw
# covers arbitrary labels.
_LABEL = st.one_of(
    st.sampled_from(("", "matvec", "spmv", "lsu0", "ch:out")),
    st.text(alphabet=st.characters(blacklist_categories=("Cs",)),
            max_size=6))

#: (name, fields); the last entry is registered lazily via
#: ``ensure_schema`` mid-stream — the dynamic (ibuffer-layout) path.
_SCHEMA_POOL = (
    ("prop.one", ("a",)),
    ("prop.three", ("a", "b", "c")),
    ("prop.dyn", ("alpha", "beta")),
)
_FLUSH_ROWS = st.sampled_from((0, 1, 3, 7))


@st.composite
def _event_stream(draw):
    """A mixed-schema stream of (name, fields, ts, kernel, cu, site, values)."""
    count = draw(st.integers(min_value=0, max_value=40))
    events = []
    for _ in range(count):
        name, fields = draw(st.sampled_from(_SCHEMA_POOL))
        events.append((name, fields, draw(_TS), draw(_LABEL),
                       draw(st.integers(min_value=0, max_value=7)),
                       draw(_LABEL),
                       tuple(draw(_INT64) for _ in fields)))
    return events


def _replay(events, ingest, flush_rows, path):
    """Run one stream through a hub+sink; returns (bytes, counts, records)."""
    hub = TraceHub(SchemaRegistry(builtins=False), ingest=ingest,
                   flush_rows=flush_rows)
    for name, fields in _SCHEMA_POOL[:2]:
        hub.register(TraceSchema(name, fields))
    hub.attach(ColumnarSink(path, hub.registry))
    for name, fields, ts, kernel, cu, site, values in events:
        if name == "prop.dyn":
            hub.ensure_schema(name, fields)
        hub.emit(name, ts, kernel=kernel, cu=cu, site=site,
                 **dict(zip(fields, values)))
    records = list(hub.records)
    counts = dict(hub.counts)
    hub.close()
    if os.path.exists(path):
        with open(path, "rb") as handle:
            return handle.read(), counts, records
    return b"", counts, records


class TestIngestEquivalence:
    @given(_event_stream(), _FLUSH_ROWS)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_modes_byte_identical(self, events, flush_rows):
        """batch and reference ingest write the same bundle, rows, counts."""
        with tempfile.TemporaryDirectory() as tmp:
            batch = _replay(events, "batch", flush_rows,
                            os.path.join(tmp, "batch.ctb"))
            reference = _replay(events, "reference", flush_rows,
                                os.path.join(tmp, "reference.ctb"))
        assert batch[0] == reference[0]
        assert batch[1] == reference[1]
        assert batch[2] == reference[2]

    @given(_event_stream(), _FLUSH_ROWS)
    @settings(max_examples=max(4, MAX_EXAMPLES // 2), deadline=None)
    def test_query_rows_match_reference(self, events, flush_rows):
        """Loaded bundles answer queries identically across ingest modes."""
        with tempfile.TemporaryDirectory() as tmp:
            batch_path = os.path.join(tmp, "batch.ctb")
            reference_path = os.path.join(tmp, "reference.ctb")
            _replay(events, "batch", flush_rows, batch_path)
            _replay(events, "reference", flush_rows, reference_path)
            if not events:
                assert not os.path.exists(batch_path)
                assert not os.path.exists(reference_path)
                return
            batch_rows = TraceQuery(ColumnarStore.load(batch_path)).records()
            reference_rows = TraceQuery(
                ColumnarStore.load(reference_path)).records()
        assert batch_rows == reference_rows
        assert len(batch_rows) == len(events)

    @given(st.lists(st.tuples(_TS, _LABEL, _INT64, _INT64, _INT64),
                    max_size=30),
           _FLUSH_ROWS)
    @settings(max_examples=max(4, 2 * MAX_EXAMPLES // 3), deadline=None)
    def test_writer_api_matches_reference_emit(self, rows, flush_rows):
        """Bound writers (write/write_to) produce the reference bundle."""
        def replay(ingest, path):
            hub = TraceHub(SchemaRegistry(builtins=False),
                           keep_records=False, ingest=ingest,
                           flush_rows=flush_rows)
            hub.register(TraceSchema("prop.three", ("a", "b", "c")))
            hub.attach(ColumnarSink(path, hub.registry))
            bound = hub.writer("prop.three", kernel="k", cu=1, site="s0")
            roving = hub.writer("prop.three", kernel="k2", cu=2)
            for index, (ts, site, a, b, c) in enumerate(rows):
                if index % 2:
                    bound.write(ts, a, b, c)
                else:
                    roving.write_to(site, ts, a, b, c)
            hub.close()
            if not os.path.exists(path):
                return b""
            with open(path, "rb") as handle:
                return handle.read()

        with tempfile.TemporaryDirectory() as tmp:
            assert replay("batch", os.path.join(tmp, "batch.ctb")) == \
                replay("reference", os.path.join(tmp, "reference.ctb"))

    @given(_event_stream())
    @settings(max_examples=max(4, MAX_EXAMPLES // 2), deadline=None)
    def test_legacy_sink_sees_identical_records_on_batch_hub(self, events):
        """The on_batch shim replays exactly the per-record stream."""
        class Replayed(TraceSink):
            accepts_batches = True     # but only on_record is overridden

            def __init__(self):
                self.records = []

            def on_record(self, schema, record):
                self.records.append(record)

        shim = Replayed()
        hub = TraceHub(SchemaRegistry(builtins=False), ingest="batch")
        for name, fields in _SCHEMA_POOL[:2]:
            hub.register(TraceSchema(name, fields))
        hub.attach(shim)
        for name, fields, ts, kernel, cu, site, values in events:
            if name == "prop.dyn":
                hub.ensure_schema(name, fields)
            hub.emit(name, ts, kernel=kernel, cu=cu, site=site,
                     **dict(zip(fields, values)))
        expected = list(hub.records)
        hub.close()
        # Shim delivery is batch-at-seal: schema-grouped per window
        # (first-appearance order), stream order kept within a schema.
        assert len(shim.records) == len(expected)
        for name, _ in _SCHEMA_POOL:
            assert [r for r in shim.records if r.schema == name] == \
                [r for r in expected if r.schema == name]


class TestBinaryFrameEncoding:
    @given(st.lists(st.tuples(_TS, _LABEL, st.integers(0, 7), _LABEL,
                              _INT64, _INT64),
                    max_size=20))
    @settings(max_examples=max(4, 2 * MAX_EXAMPLES // 3), deadline=None)
    def test_binary_and_base64_wire_forms_carry_identical_bytes(self, rows):
        registry = SchemaRegistry(builtins=False)
        schema = registry.ensure("prop.wire", ("alpha", "beta"))
        records = [TraceRecord("prop.wire", ts=ts, kernel=kernel, cu=cu,
                               site=site, values=(alpha, beta))
                   for ts, kernel, cu, site, alpha, beta in rows]
        segment = Segment.from_records(schema, records)
        payload = segment.payload_bytes()

        header = protocol.segment_header(segment, len(payload))
        json.loads(json.dumps(header))           # stays a pure JSON header
        assert header["length"] == len(payload)
        from_binary = protocol.segment_from_header(header, payload)
        from_base64 = protocol.segment_from_wire(
            protocol.segment_to_wire(segment))

        assert from_binary.payload_bytes() == payload
        assert from_base64.payload_bytes() == payload
        assert [from_binary.record(i) for i in range(from_binary.rows)] == \
            records
        assert [from_base64.record(i) for i in range(from_base64.rows)] == \
            records


class TestTraceIngestGate:
    def test_batch_ingest_speedup_floor(self):
        """The tentpole's acceptance floor: >= 5x ingest throughput over
        ``ingest="reference"`` on ~1M synthetic rows, with a
        byte-identical ``.ctb``."""
        from repro.perf import harness

        value, detail = harness.bench_trace_ingest()
        assert detail["records"] >= 1_000_000
        assert detail["outputs_identical"] is True
        assert detail["speedup_vs_reference"] >= 5.0, (
            f"batch ingest speedup {detail['speedup_vs_reference']:.2f}x "
            f"< 5x (batch {value:,.0f} vs reference "
            f"{detail['reference_records_per_s']:,.0f} records/s)")
        assert value > 0
