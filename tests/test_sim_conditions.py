"""Unit tests for AnyOf/AllOf condition events."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.conditions import AllOf, AnyOf
from repro.sim.core import Simulator


class TestAllOf:
    def test_waits_for_every_event(self, sim):
        a, b = sim.timeout(2, value="a"), sim.timeout(5, value="b")
        cond = AllOf(sim, [a, b])
        done = []
        def waiter():
            values = yield cond
            done.append((sim.now, sorted(values.values())))
        sim.process(waiter())
        sim.run()
        assert done == [(5, ["a", "b"])]

    def test_empty_condition_triggers_immediately(self, sim):
        cond = AllOf(sim, [])
        assert cond.triggered
        assert cond.value == {}

    def test_failure_propagates(self, sim):
        event = sim.event()
        timeout = sim.timeout(1)
        cond = AllOf(sim, [event, timeout])
        caught = []
        def waiter():
            try:
                yield cond
            except RuntimeError as exc:
                caught.append(str(exc))
        def failer():
            yield sim.timeout(2)
            event.fail(RuntimeError("dead"))
        sim.process(waiter())
        sim.process(failer())
        sim.run()
        assert caught == ["dead"]


class TestAnyOf:
    def test_first_event_wins(self, sim):
        slow, fast = sim.timeout(10, value="slow"), sim.timeout(3, value="fast")
        cond = AnyOf(sim, [slow, fast])
        done = []
        def waiter():
            values = yield cond
            done.append((sim.now, list(values.values())))
        sim.process(waiter())
        sim.run()
        assert done == [(3, ["fast"])]

    def test_mixed_simulators_rejected(self):
        sim_a, sim_b = Simulator(), Simulator()
        event_b = sim_b.event()
        with pytest.raises(SimulationError):
            AnyOf(sim_a, [sim_a.event(), event_b])
