"""Corner-semantics tests run under BOTH frontend backends.

Each case pins a C-semantics subtlety — switch fallthrough, compound
assignment, short-circuit evaluation order, scope shadowing, diagnostic
positions — and must behave identically whether the kernel body executes
through the reference tree-walking interpreter or the closure codegen.
"""

from __future__ import annotations

import pytest

from repro.errors import ProcessError
from repro.frontend import FRONTENDS, FrontendError, compile_source
from repro.pipeline.fabric import Fabric


@pytest.fixture(params=FRONTENDS)
def frontend(request):
    return request.param


def _run(body, frontend, n=8, extra_args=None, params=""):
    fabric = Fabric()
    source = f"""
        __kernel void k(__global int* out, int n{params}) {{ {body} }}
    """
    program = compile_source(fabric, source, frontend=frontend)
    fabric.memory.allocate("OUT", n)
    args = {"out": "OUT", "n": n}
    args.update(extra_args or {})
    fabric.run_kernel(program.kernel("k"), args)
    return fabric.memory.buffer("OUT").snapshot()


class TestSwitchFallthrough:
    SOURCE = """
        int hits = 0;
        switch (n) {
            case 1: hits += 1;
            case 2: hits += 10;
            case 3: hits += 100; break;
            case 4: hits += 1000;
            default: hits += 10000;
        }
        out[0] = hits;
    """

    @pytest.mark.parametrize("n,expected", [
        (1, 111),       # falls through 1 -> 2 -> 3, stops at break
        (2, 110),       # enters mid-chain
        (3, 100),
        (4, 11000),     # falls through into default
        (9, 10000),     # no match: default only
    ])
    def test_fallthrough(self, frontend, n, expected):
        out = _run(self.SOURCE, frontend, extra_args={"n": n})
        assert out[0] == expected

    def test_no_match_no_default_is_noop(self, frontend):
        out = _run("""
            out[0] = 5;
            switch (n) { case 1: out[0] = 9; break; }
        """, frontend, extra_args={"n": 3})
        assert out[0] == 5

    def test_all_labels_evaluated_in_order(self, frontend):
        # Label expressions may have side effects; C evaluates the chosen
        # one, but this frontend (both backends) evaluates every label in
        # order while scanning for the match — pin that behavior.
        out = _run("""
            int probe = 0;
            switch (2) {
                case 1: out[1] = 1; break;
                case (probe++ + 2): out[0] = probe; break;
            }
        """, frontend)
        assert out[0] == 1


class TestCompoundAssignment:
    def test_scalar_compounds(self, frontend):
        out = _run("""
            int a = 7;
            a += 5; out[0] = a;
            a -= 2; out[1] = a;
            a *= 3; out[2] = a;
            a /= 4; out[3] = a;   // 30 / 4 == 7 (truncation)
            a %= 5; out[4] = a;
        """, frontend)
        assert list(out[:5]) == [12, 10, 30, 7, 2]

    def test_private_array_compound(self, frontend):
        out = _run("""
            int acc[4];
            acc[1] = 10;
            acc[1] += 32;
            out[0] = acc[1];
        """, frontend)
        assert out[0] == 42

    def test_buffer_compound_is_load_then_store(self, frontend):
        out = _run("""
            out[0] = 40;
            out[0] += 2;
            out[1] = 50;
            out[1] /= 7;
        """, frontend)
        assert list(out[:2]) == [42, 7]

    def test_compound_rvalue_evaluated_before_target_read(self, frontend):
        # ``x += x++`` : the rvalue (old x) is computed first, then the
        # *updated* x is read as the compound's current value.
        out = _run("""
            int x = 5;
            x += x++;
            out[0] = x;
        """, frontend)
        assert out[0] == 11     # 6 (post-increment applied) + 5 (old)

    def test_negative_truncating_division(self, frontend):
        out = _run("""
            int a = -7;
            a /= 2;
            out[0] = a;        // C truncates toward zero: -3
            out[1] = -7 % 2;   // sign follows the dividend: -1
        """, frontend)
        assert list(out[:2]) == [-3, -1]


class TestShortCircuit:
    def test_and_skips_rhs_when_false(self, frontend):
        out = _run("""
            int evals = 0;
            int r = (n > 100) && (evals++ < 99);
            out[0] = r;
            out[1] = evals;
        """, frontend)
        assert list(out[:2]) == [0, 0]

    def test_and_evaluates_rhs_when_true(self, frontend):
        out = _run("""
            int evals = 0;
            int r = (n > 0) && (evals++ < 99);
            out[0] = r;
            out[1] = evals;
        """, frontend)
        assert list(out[:2]) == [1, 1]

    def test_or_skips_rhs_when_true(self, frontend):
        out = _run("""
            int evals = 0;
            int r = (n > 0) || (evals++ < 99);
            out[0] = r;
            out[1] = evals;
        """, frontend)
        assert list(out[:2]) == [1, 0]

    def test_or_evaluates_rhs_when_false(self, frontend):
        out = _run("""
            int evals = 0;
            int r = (n > 100) || (evals++ > 99);
            out[0] = r;
            out[1] = evals;
        """, frontend)
        assert list(out[:2]) == [0, 1]

    def test_result_is_normalized_to_0_or_1(self, frontend):
        out = _run("""
            out[0] = 7 && 9;
            out[1] = 0 || 5;
            out[2] = !7;
            out[3] = !0;
        """, frontend)
        assert list(out[:4]) == [1, 1, 0, 1]

    def test_guarded_division_never_executes(self, frontend):
        out = _run("""
            int zero = 0;
            if (0 && (1 / zero)) { out[0] = 1; } else { out[0] = 2; }
            if (1 || (1 / zero)) { out[1] = 3; }
        """, frontend)
        assert list(out[:2]) == [2, 3]


class TestScopeShadowing:
    def test_block_shadowing_restores_outer(self, frontend):
        out = _run("""
            int x = 1;
            {
                int x = 2;
                out[0] = x;
                {
                    int x = 3;
                    out[1] = x;
                }
                out[2] = x;
            }
            out[3] = x;
        """, frontend)
        assert list(out[:4]) == [2, 3, 2, 1]

    def test_inner_writes_through_to_outer_without_decl(self, frontend):
        out = _run("""
            int x = 1;
            { x = 5; { x += 1; } }
            out[0] = x;
        """, frontend)
        assert out[0] == 6

    def test_loop_variable_shadows_param(self, frontend):
        out = _run("""
            for (int n = 0; n < 3; n++) { out[n] = n; }
            out[3] = n;
        """, frontend, extra_args={"n": 8})
        assert list(out[:4]) == [0, 1, 2, 8]

    def test_read_before_decl_in_block_sees_outer(self, frontend):
        # Name resolution is positional: a use before the shadowing
        # declaration binds to the outer variable.
        out = _run("""
            int x = 7;
            for (int i = 0; i < 2; i++) {
                out[i] = x;
                int x = 99;
                out[4 + i] = x;
            }
        """, frontend)
        assert list(out[:2]) == [7, 7]
        assert list(out[4:6]) == [99, 99]

    def test_same_scope_redeclaration_rebinds(self, frontend):
        out = _run("""
            int x = 1;
            int x = 2;
            out[0] = x;
        """, frontend)
        assert out[0] == 2


class TestDiagnosticPositions:
    def test_runtime_error_carries_line_and_column(self, frontend):
        fabric = Fabric()
        program = compile_source(fabric, (
            "__kernel void k(__global int* out) {\n"
            "    int zero = 0;\n"
            "    out[0] = 1 / zero;\n"
            "}\n"), frontend=frontend)
        fabric.memory.allocate("OUT", 1)
        with pytest.raises(ProcessError,
                           match=r"line 3:\d+: division by zero"):
            fabric.run_kernel(program.kernel("k"), {"out": "OUT"})

    def test_undefined_identifier_positioned(self, frontend):
        fabric = Fabric()
        program = compile_source(fabric, (
            "__kernel void k(__global int* out) {\n"
            "    out[0] = mystery;\n"
            "}\n"), frontend=frontend)
        fabric.memory.allocate("OUT", 1)
        with pytest.raises(
                ProcessError,
                match=r"line 2:\d+: undefined identifier 'mystery'"):
            fabric.run_kernel(program.kernel("k"), {"out": "OUT"})

    def test_parse_error_carries_position(self):
        with pytest.raises(FrontendError, match=r"line 2:\d+"):
            compile_source(Fabric(), (
                "__kernel void k(__global int* out) {\n"
                "    out[0] = ;\n"
                "}\n"))

    def test_lexer_error_carries_position(self):
        with pytest.raises(FrontendError,
                           match=r"line 1:\d+: unexpected character"):
            compile_source(Fabric(), "__kernel void k(`) { }")

    def test_structured_fields_exposed(self):
        try:
            compile_source(Fabric(), (
                "__kernel void k(__global int* out) {\n"
                "    out[0] = ;\n"
                "}\n"))
        except FrontendError as error:
            assert error.line == 2
            assert error.column and error.column > 0
        else:  # pragma: no cover
            pytest.fail("expected FrontendError")
