"""Integration tests: probing multiple kernels with one replicated ibuffer.

The §4 replication scenario: producer/consumer kernels on one channel,
each feeding its own ibuffer instance; the merged traces reconstruct the
global event order and quantify backpressure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stall_monitor import StallMonitor
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import SingleTaskKernel


class _Producer(SingleTaskKernel):
    def __init__(self, channel, monitor, **kw):
        super().__init__(**kw)
        self.channel = channel
        self.monitor = monitor

    def iteration_space(self, args):
        return range(args["n"])

    def body(self, ctx):
        value = yield ctx.load("src", ctx.iteration)
        self.monitor.take_snapshot(ctx, 0, ctx.iteration)
        yield ctx.write_channel(self.channel, value)


class _Consumer(SingleTaskKernel):
    def __init__(self, channel, monitor, ii=1, **kw):
        from repro.pipeline.kernel import PipelineConfig
        super().__init__(pipeline=PipelineConfig(ii=ii, max_inflight=1), **kw)
        self.channel = channel
        self.monitor = monitor

    def iteration_space(self, args):
        return range(args["n"])

    def body(self, ctx):
        value = yield ctx.read_channel(self.channel)
        self.monitor.take_snapshot(ctx, 1, ctx.iteration)
        yield ctx.compute(ctx.arg("work"))
        yield ctx.store("dst", ctx.iteration, value)


def _run(n=24, work=7, depth=4):
    fabric = Fabric()
    channel = fabric.channels.declare("stream", depth=depth)
    monitor = StallMonitor(fabric, sites=2, depth=128, name="pipe_mon")
    fabric.memory.allocate("src", n).fill(np.arange(n))
    fabric.memory.allocate("dst", n)
    producer = fabric.launch(_Producer(channel, monitor, name="producer"),
                             {"n": n})
    consumer = fabric.launch(
        _Consumer(channel, monitor, ii=work, name="consumer"),
        {"n": n, "work": work})
    fabric.run(producer.completion, consumer.completion)
    fabric.run(fabric.memory.drained())
    return fabric, channel, monitor


class TestMultiKernelProbing:
    def test_results_correct_through_channel(self):
        fabric, _, _ = _run()
        assert np.array_equal(fabric.memory.buffer("dst").snapshot(),
                              np.arange(24))

    def test_each_kernel_fills_its_own_instance(self):
        _, _, monitor = _run()
        sends = monitor.read_site(0)
        recvs = monitor.read_site(1)
        assert len(sends) == len(recvs) == 24
        assert [e["value"] for e in sends] == list(range(24))
        assert [e["value"] for e in recvs] == list(range(24))

    def test_every_item_sent_before_received(self):
        _, _, monitor = _run()
        send_at = {e["value"]: e["timestamp"] for e in monitor.read_site(0)}
        recv_at = {e["value"]: e["timestamp"] for e in monitor.read_site(1)}
        assert all(send_at[item] <= recv_at[item] for item in send_at)

    def test_backpressure_measurable_in_trace_and_counters(self):
        """A slow consumer + shallow channel must show up both ways."""
        _, channel, monitor = _run(work=15, depth=2)
        assert channel.stats.write_stall_cycles > 0
        send_at = {e["value"]: e["timestamp"] for e in monitor.read_site(0)}
        recv_at = {e["value"]: e["timestamp"] for e in monitor.read_site(1)}
        residency = [recv_at[i] - send_at[i] for i in send_at]
        # Once the channel fills, items wait roughly the consumer's period.
        assert max(residency) > min(residency)

    def test_deeper_channel_reduces_backpressure(self):
        _, shallow, _ = _run(work=15, depth=2)
        _, deep, _ = _run(work=15, depth=64)
        assert (deep.stats.write_stall_cycles
                < shallow.stats.write_stall_cycles)
