"""Tests for the bottleneck diagnosis advisor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bottleneck import Finding, diagnose, render_diagnosis
from repro.errors import ReproError
from repro.kernels.matmul import MatMulKernel, allocate_matmul_buffers
from repro.kernels.pointer_chase import PointerChaseKernel, build_chain
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import PipelineConfig, SingleTaskKernel


class TestDiagnose:
    def test_memory_site_ranked_first_for_matmul(self, fabric):
        allocate_matmul_buffers(fabric, 4, 8, 4)
        engine = fabric.run_kernel(MatMulKernel(), {"rows_a": 4, "col_a": 8,
                                                    "col_b": 4})
        findings = diagnose(fabric, engine)
        assert findings[0].kind == "memory-site"
        assert findings[0].cost_cycles > 0

    def test_serialization_flagged_for_pointer_chase(self, fabric):
        fabric.memory.allocate("ptr", 64).fill(build_chain(64))
        fabric.memory.allocate("out", 1)

        class SteppedChase(SingleTaskKernel):
            def __init__(self):
                super().__init__(name="chase",
                                 pipeline=PipelineConfig(max_inflight=1))
                self._index = 0
            def iteration_space(self, args):
                return range(args["steps"])
            def body(self, ctx):
                index = self._index if ctx.iteration else 0
                self._index = yield ctx.load("ptr", index)

        engine = fabric.run_kernel(SteppedChase(), {"steps": 10})
        kinds = {finding.kind for finding in diagnose(fabric, engine)}
        assert "serialization" in kinds

    def test_issue_stall_flagged_for_shallow_pipeline(self, fabric):
        fabric.memory.allocate("src", 32).fill(range(32))
        fabric.memory.allocate("dst", 32)

        class Copy(SingleTaskKernel):
            def __init__(self):
                super().__init__(name="copy",
                                 pipeline=PipelineConfig(max_inflight=2))
            def iteration_space(self, args):
                return range(32)
            def body(self, ctx):
                value = yield ctx.load("src", ctx.iteration)
                yield ctx.store("dst", ctx.iteration, value)

        engine = fabric.run_kernel(Copy(), {})
        kinds = {finding.kind for finding in diagnose(fabric, engine)}
        assert "issue-stall" in kinds

    def test_channel_stalls_flagged(self, fabric):
        from repro.kernels.fir import run_fir
        run_fir(fabric, [1] * 8, np.arange(48), channel_depth=2,
                mac_cycles_per_tap=3)
        engine = next(e for e in fabric.engines
                      if e.kernel.name == "fir_reader")
        findings = diagnose(fabric, engine, top=10)
        assert any(finding.kind == "channel" for finding in findings)

    def test_incomplete_launch_rejected(self, fabric):
        allocate_matmul_buffers(fabric, 2, 2, 2)
        engine = fabric.launch(MatMulKernel(), {"rows_a": 2, "col_a": 2,
                                                "col_b": 2})
        with pytest.raises(ReproError):
            diagnose(fabric, engine)

    def test_render_ranked_and_readable(self, fabric):
        allocate_matmul_buffers(fabric, 3, 4, 3)
        engine = fabric.run_kernel(MatMulKernel(), {"rows_a": 3, "col_a": 4,
                                                    "col_b": 3})
        text = render_diagnosis(diagnose(fabric, engine))
        assert "advice:" in text
        assert "memory-site" in text

    def test_render_empty(self):
        assert "no significant" in render_diagnosis([])

    def test_top_limits_results(self, fabric):
        allocate_matmul_buffers(fabric, 3, 4, 3)
        engine = fabric.run_kernel(MatMulKernel(), {"rows_a": 3, "col_a": 4,
                                                    "col_b": 3})
        assert len(diagnose(fabric, engine, top=2)) <= 2
