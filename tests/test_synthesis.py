"""Unit tests for the synthesis area/timing model."""

from __future__ import annotations

import pytest

from repro.errors import SynthesisError
from repro.pipeline.kernel import ResourceProfile, SingleTaskKernel
from repro.synthesis.cost_model import ChannelSpec, CostModel, CostTable
from repro.synthesis.design import Design, ShellProfile
from repro.synthesis.report import compare_reports, synthesize
from repro.synthesis.resources import (
    ARRIA_10,
    DeviceModel,
    PLATFORMS,
    ResourceVector,
    STRATIX_V,
)
from repro.synthesis.timing_model import TimingModel


class _StubKernel(SingleTaskKernel):
    def __init__(self, profile, name="stub", num_compute_units=1):
        super().__init__(name=name, num_compute_units=num_compute_units)
        self._profile = profile

    def resource_profile(self):
        return self._profile


class TestResourceVector:
    def test_addition(self):
        total = (ResourceVector(alms=10, ram_blocks=2)
                 + ResourceVector(alms=5, dsps=1))
        assert total.alms == 15
        assert total.ram_blocks == 2
        assert total.dsps == 1

    def test_scaling(self):
        scaled = ResourceVector(alms=10, ram_blocks=3).scaled(2)
        assert scaled.alms == 20
        assert scaled.ram_blocks == 6


class TestDeviceModels:
    def test_stratix_v_capacity(self):
        assert STRATIX_V.total_memory_bits == 2_560 * 20_480

    def test_platform_registry(self):
        assert set(PLATFORMS) == {"stratix-v", "arria-10",
                                  "arria-10-integrated"}

    def test_invalid_device_rejected(self):
        with pytest.raises(SynthesisError):
            DeviceModel(name="bad", alms=0, registers=1, m20k_blocks=1,
                        bits_per_block=1, dsps=1, base_path_ns=1,
                        lsu_path_ns=0, alu_path_ns=0, channel_path_ns=0,
                        fanout_path_ns=0, congestion_path_ns=0,
                        retiming_path_factor=1, retiming_alm_factor=1)


class TestCostModel:
    def test_loads_dominate_area(self):
        model = CostModel()
        loads = model.profile_vector(ResourceProfile(load_sites=1,
                                                     control_states=0))
        adders = model.profile_vector(ResourceProfile(adders=1,
                                                      control_states=0))
        assert loads.alms > 10 * adders.alms

    def test_multiplier_uses_dsp(self):
        vector = CostModel().profile_vector(ResourceProfile(multipliers=3))
        assert vector.dsps == 3

    def test_structural_blocks_override_packing(self):
        model = CostModel()
        profile = ResourceProfile(local_memory_bits=1_000_000,
                                  ram_blocks_structural=50)
        assert model.blocks_for(profile) == 50

    def test_packed_blocks_ceil(self):
        model = CostModel(bits_per_block=20_480)
        profile = ResourceProfile(local_memory_bits=20_480)
        # 20480 bits at 85% packing needs 2 blocks.
        assert model.blocks_for(profile) == 2

    def test_lsu_caches_charged_one_block_each(self):
        model = CostModel()
        profile = ResourceProfile(load_sites=2, store_sites=1)
        assert model.blocks_for(profile) == 3

    def test_bad_packing_rejected(self):
        with pytest.raises(SynthesisError):
            CostTable(m20k_packing=0.0)


class TestChannelCosts:
    def test_depth_zero_is_register(self):
        vector = CostModel().channel_vector(ChannelSpec(depth=0, width_bits=32))
        assert vector.ram_blocks == 0
        assert vector.registers == 32

    def test_shallow_fifo_in_mlabs(self):
        vector = CostModel().channel_vector(ChannelSpec(depth=8, width_bits=32))
        assert vector.ram_blocks == 0
        assert vector.alms > 0

    def test_deep_fifo_in_m20k(self):
        vector = CostModel().channel_vector(ChannelSpec(depth=1024,
                                                        width_bits=64))
        assert vector.ram_blocks >= 4
        assert vector.memory_bits == 1024 * 64

    def test_invalid_spec_rejected(self):
        with pytest.raises(SynthesisError):
            ChannelSpec(depth=-1)


class TestTimingModel:
    def test_more_lsus_slower(self):
        timing = TimingModel(STRATIX_V)
        small = timing.kernel_fmax_mhz(ResourceProfile(load_sites=1))
        big = timing.kernel_fmax_mhz(ResourceProfile(load_sites=8))
        assert big < small

    def test_intrinsic_path_caps_fmax(self):
        timing = TimingModel(STRATIX_V)
        free = timing.kernel_fmax_mhz(ResourceProfile())
        chained = timing.kernel_fmax_mhz(
            ResourceProfile(intrinsic_path_ns=2.0))
        assert chained < free

    def test_operator_depth_saturates(self):
        """Unrolled datapaths are pipelined: 64 vs 640 operators same path."""
        timing = TimingModel(STRATIX_V)
        wide = timing.kernel_fmax_mhz(ResourceProfile(adders=64))
        wider = timing.kernel_fmax_mhz(ResourceProfile(adders=640))
        assert wide == wider

    def test_retiming_raises_fmax(self):
        timing = TimingModel(STRATIX_V)
        profile = ResourceProfile(load_sites=2, adders=4)
        assert (timing.kernel_fmax_mhz(profile, retimed=True)
                > timing.kernel_fmax_mhz(profile, retimed=False))

    def test_congestion_lowers_fmax(self):
        timing = TimingModel(STRATIX_V)
        profile = ResourceProfile(load_sites=1)
        assert (timing.kernel_fmax_mhz(profile, utilization_fraction=0.9)
                < timing.kernel_fmax_mhz(profile, utilization_fraction=0.1))


class TestDesignAndReport:
    def test_duplicate_kernel_names_rejected(self):
        design = Design("d", kernels=[_StubKernel(ResourceProfile(), "k"),
                                      _StubKernel(ResourceProfile(), "k")])
        with pytest.raises(SynthesisError):
            design.kernel_profiles()

    def test_instrumented_designs_lose_retiming(self):
        class Instr(_StubKernel):
            is_instrumentation = True
        clean = Design("clean", kernels=[_StubKernel(ResourceProfile())])
        dirty = Design("dirty", kernels=[
            _StubKernel(ResourceProfile()),
            Instr(ResourceProfile(), "probe")])
        assert clean.retiming_eligible()
        assert not dirty.retiming_eligible()

    def test_intrinsic_path_disqualifies_retiming(self):
        design = Design("d", kernels=[
            _StubKernel(ResourceProfile(intrinsic_path_ns=0.5))])
        assert not design.retiming_eligible()

    def test_report_includes_shell(self):
        design = Design("d", kernels=[_StubKernel(ResourceProfile())])
        report = synthesize(design)
        assert report.total.alms >= design.shell.alms

    def test_report_rows_and_render(self):
        design = Design("d", kernels=[_StubKernel(
            ResourceProfile(load_sites=1, multipliers=2))])
        report = synthesize(design)
        row = report.row()
        assert row["clock_freq_mhz"] > 0
        assert "Synthesis report" in report.render()

    def test_replication_multiplies_profile(self):
        single = synthesize(Design("s", kernels=[
            _StubKernel(ResourceProfile(load_sites=1), "k", 1)]))
        triple = synthesize(Design("t", kernels=[
            _StubKernel(ResourceProfile(load_sites=1), "k", 3)]))
        assert (triple.per_kernel["k"].alms
                == pytest.approx(3 * single.per_kernel["k"].alms))

    def test_compare_reports_renders_deltas(self):
        base = synthesize(Design("base", kernels=[
            _StubKernel(ResourceProfile(load_sites=1))]))
        other = synthesize(Design("other", kernels=[
            _StubKernel(ResourceProfile(load_sites=4))]))
        text = compare_reports({"base": base, "other": other}, "base")
        assert "dFreq%" in text

    def test_compare_unknown_baseline_rejected(self):
        report = synthesize(Design("d", kernels=[
            _StubKernel(ResourceProfile())]))
        with pytest.raises(KeyError):
            compare_reports({"d": report}, "nope")

    def test_utilization_fractions(self):
        design = Design("d", kernels=[_StubKernel(ResourceProfile(
            load_sites=2, multipliers=4))])
        report = synthesize(design, device=STRATIX_V)
        util = report.utilization_of(STRATIX_V)
        assert 0 < util["alms"] < 1
        assert util["dsps"] == pytest.approx(4 / STRATIX_V.dsps)

    def test_devices_differ_in_fmax(self):
        design = Design("d", kernels=[_StubKernel(
            ResourceProfile(load_sites=2, adders=4))])
        stratix = synthesize(design, device=STRATIX_V)
        arria = synthesize(design, device=ARRIA_10)
        assert arria.fmax_mhz > stratix.fmax_mhz
