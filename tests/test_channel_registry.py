"""Unit tests for channel namespaces and arrays."""

from __future__ import annotations

import pytest

from repro.channels.registry import ChannelArray, ChannelNamespace
from repro.errors import ChannelUsageError


class TestChannelNamespace:
    def test_declare_and_get(self, sim):
        namespace = ChannelNamespace(sim)
        declared = namespace.declare("time_ch", depth=0)
        assert namespace.get("time_ch") is declared

    def test_double_declaration_rejected(self, sim):
        namespace = ChannelNamespace(sim)
        namespace.declare("c")
        with pytest.raises(ChannelUsageError):
            namespace.declare("c")

    def test_scalar_and_array_share_namespace(self, sim):
        namespace = ChannelNamespace(sim)
        namespace.declare_array("data", 4)
        with pytest.raises(ChannelUsageError):
            namespace.declare("data")

    def test_unknown_lookup_raises(self, sim):
        namespace = ChannelNamespace(sim)
        with pytest.raises(ChannelUsageError):
            namespace.get("nope")
        with pytest.raises(ChannelUsageError):
            namespace.get_array("nope")

    def test_all_channels_flattens_arrays(self, sim):
        namespace = ChannelNamespace(sim)
        namespace.declare("s")
        namespace.declare_array("a", 3)
        assert len(namespace.all_channels()) == 4

    def test_stats_table_keys(self, sim):
        namespace = ChannelNamespace(sim)
        namespace.declare("s", depth=2)
        namespace.get("s").write_nb(1)
        table = namespace.stats_table()
        assert table["s"]["writes"] == 1


class TestChannelArray:
    def test_indexing_and_len(self, sim):
        array = ChannelArray(sim, "cmd_c", 10, depth=4)
        assert len(array) == 10
        assert array[3].name == "cmd_c[3]"

    def test_zero_count_rejected(self, sim):
        with pytest.raises(ChannelUsageError):
            ChannelArray(sim, "x", 0)

    def test_per_element_independence(self, sim):
        array = ChannelArray(sim, "data", 2, depth=1)
        array[0].write_nb("only-zero")
        assert array[1].read_nb() == (None, False)
        assert array[0].read_nb() == ("only-zero", True)

    def test_iteration_order(self, sim):
        array = ChannelArray(sim, "c", 3)
        names = [channel.name for channel in array]
        assert names == ["c[0]", "c[1]", "c[2]"]
