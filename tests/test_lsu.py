"""Unit tests for load/store units: per-site in-order retirement."""

from __future__ import annotations

import pytest

from repro.memory.global_memory import GlobalMemory, GlobalMemoryConfig
from repro.memory.lsu import LoadStoreUnit


def _memory(sim, size=4096):
    memory = GlobalMemory(sim)
    memory.allocate("x", size).fill(range(size))
    return memory


class TestBasics:
    def test_bad_kind_rejected(self, sim):
        memory = _memory(sim)
        with pytest.raises(ValueError):
            LoadStoreUnit(sim, memory, "s", "move")

    def test_load_returns_value(self, sim):
        memory = _memory(sim)
        lsu = LoadStoreUnit(sim, memory, "site", "load")
        out = []
        def body():
            value = yield lsu.issue("x", 7)
            out.append(value)
        sim.process(body())
        sim.run()
        assert out == [7]

    def test_store_writes_value(self, sim):
        memory = _memory(sim)
        lsu = LoadStoreUnit(sim, memory, "site", "store")
        def body():
            yield lsu.issue("x", 3, value=99)
        sim.process(body())
        sim.run()
        assert memory.buffer("x").read(3) == 99


class TestInOrderRetirement:
    def test_later_issue_never_retires_first(self, sim):
        """A fast second access must wait for the slow first one."""
        config = GlobalMemoryConfig(banks=1)  # everything serializes on bank 0
        memory = GlobalMemory(sim, config)
        memory.allocate("x", 4096).fill(range(4096))
        lsu = LoadStoreUnit(sim, memory, "site", "load")
        retire_order = []
        def body():
            first = lsu.issue("x", 0)
            second = lsu.issue("x", 1)
            first.add_callback(lambda e: retire_order.append("first"))
            second.add_callback(lambda e: retire_order.append("second"))
            yield sim.timeout(0)
        sim.process(body())
        sim.run()
        assert retire_order == ["first", "second"]

    def test_ordering_stall_recorded(self, sim):
        config = GlobalMemoryConfig(banks=8, row_bytes=64)
        memory = GlobalMemory(sim, config)
        memory.allocate("x", 64).fill(range(64))
        lsu = LoadStoreUnit(sim, memory, "site", "load")
        def body():
            # Second access (bank 1) is raw-complete at the same time as the
            # first but must retire after it.
            lsu.issue("x", 0)
            lsu.issue("x", 8)
            yield sim.timeout(0)
        sim.process(body())
        sim.run()
        assert lsu.stats.completed == 2
        assert lsu.stats.ordering_stall_cycles == 0  # equal times, no extra wait

    def test_stats_track_latency_extremes(self, sim):
        memory = _memory(sim)
        lsu = LoadStoreUnit(sim, memory, "site", "load", keep_samples=True)
        def body():
            yield lsu.issue("x", 0)   # row miss, slow
            yield lsu.issue("x", 1)   # row hit, fast
        sim.process(body())
        sim.run()
        assert lsu.stats.max_latency == lsu.stats.samples[0]
        assert lsu.stats.samples[1] < lsu.stats.samples[0]
        assert lsu.stats.mean_latency == pytest.approx(
            sum(lsu.stats.samples) / 2)

    def test_samples_disabled_by_default_flag(self, sim):
        memory = _memory(sim)
        lsu = LoadStoreUnit(sim, memory, "site", "load", keep_samples=False)
        def body():
            yield lsu.issue("x", 0)
        sim.process(body())
        sim.run()
        assert lsu.stats.samples == []
        assert lsu.stats.completed == 1
