"""Property test: the closure-codegen frontend is observationally equal
to the reference tree-walking interpreter.

Hypothesis generates random OpenCL-C kernels (arithmetic, compound
assignment, post-increment side effects, short-circuit logic, nested
loops, private arrays, global loads/stores) and compiles each under both
``frontend="codegen"`` and ``frontend="reference"`` on independent
fabrics. Every externally observable surface must match: buffer
contents, wall-clock time, engine statistics, and the per-(site, kind)
LSU timing snapshots — the last pins that both backends emit the *same
op stream with the same static site labels*, not merely the same final
values.

A second property runs the paper's Listing 6 (autorun service kernels,
channels, HDL-free instrumented matvec) at randomized sizes under both
backends.

Example budget: ``FRONTEND_EQUIV_EXAMPLES`` (default 60); CI runs a
dedicated step with a larger budget.
"""

from __future__ import annotations

import os

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source, program_cache_clear
from repro.pipeline.fabric import Fabric

MAX_EXAMPLES = int(os.environ.get("FRONTEND_EQUIV_EXAMPLES", "60"))

_BUF = 16         # size of the in/out buffers
_ACC = 8          # size of the private array


@st.composite
def _exprs(draw, depth=0):
    """A source-text expression; total values stay modest via & masks."""
    leaves = [
        st.integers(-9, 9).map(str),
        st.sampled_from(["a", "b", "c", "n"]),
        st.just(f"in[(a & {_BUF - 1})]"),
        st.just(f"acc[(b & {_ACC - 1})]"),
    ]
    if depth >= 3:
        return draw(st.one_of(leaves))
    node = draw(st.integers(0, 9))
    if node <= 3:
        return draw(st.one_of(leaves))
    left = draw(_exprs(depth=depth + 1))
    right = draw(_exprs(depth=depth + 1))
    if node == 4:
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        return f"({left} {op} {right})"
    if node == 5:
        op = draw(st.sampled_from(["<", ">", "<=", ">=", "==", "!="]))
        return f"({left} {op} {right})"
    if node == 6:
        op = draw(st.sampled_from(["&&", "||"]))
        return f"({left} {op} {right})"
    if node == 7:
        op = draw(st.sampled_from(["/", "%"]))
        # Denominator folded into [1, 8] — never zero.
        return f"({left} {op} (1 + ({right} & 7)))"
    if node == 8:
        op = draw(st.sampled_from(["!", "-", "~"]))
        return f"({op}({left}))"
    shift = draw(st.integers(0, 3))
    return f"(({left} & 255) << {shift})"


@st.composite
def _stmts(draw, depth=0, loop_depth=0):
    """One source-text statement (possibly a nested block construct)."""
    node = draw(st.integers(0, 11))
    if node <= 2:
        target = draw(st.sampled_from(["a", "b", "c"]))
        op = draw(st.sampled_from(["=", "+=", "-=", "*="]))
        return f"{target} {op} {draw(_exprs())};"
    if node == 3:
        return f"acc[(a & {_ACC - 1})] = {draw(_exprs())};"
    if node == 4:
        op = draw(st.sampled_from(["=", "+=", "-="]))
        return f"out[(b & {_BUF - 1})] {op} {draw(_exprs())};"
    if node == 5:
        target = draw(st.sampled_from(["a", "b", "c"]))
        return f"{target}{draw(st.sampled_from(['++', '--']))};"
    if node == 6:
        return f"out[(c & {_BUF - 1})] = in[(a & {_BUF - 1})];"
    if depth >= 2 or node <= 8:
        return f"a = {draw(_exprs())};"
    inner = draw(st.lists(_stmts(depth=depth + 1, loop_depth=loop_depth),
                          min_size=1, max_size=3))
    block = " ".join(inner)
    if node == 9:
        other = draw(st.lists(_stmts(depth=depth + 1, loop_depth=loop_depth),
                              min_size=0, max_size=2))
        else_block = (" else { " + " ".join(other) + " }") if other else ""
        return f"if ({draw(_exprs())}) {{ {block} }}{else_block}"
    if node == 10 and loop_depth < 2:
        var = f"i{loop_depth}"
        bound = draw(st.integers(1, 4))
        inner = draw(st.lists(
            _stmts(depth=depth + 1, loop_depth=loop_depth + 1),
            min_size=1, max_size=3))
        return (f"for (int {var} = 0; {var} < {bound}; {var}++) "
                f"{{ {' '.join(inner)} c += {var}; }}")
    return f"{{ int t = {draw(_exprs())}; b = t + 1; }}"


@st.composite
def _kernel_sources(draw):
    body = draw(st.lists(_stmts(), min_size=1, max_size=8))
    lines = [
        f"int a = {draw(st.integers(0, 9))};",
        f"int b = {draw(st.integers(0, 9))};",
        "int c = 0;",
        f"int acc[{_ACC}];",
    ] + body + [
        f"for (int i0 = 0; i0 < {_ACC}; i0++) "
        f"{{ out[i0] = out[i0] + acc[i0]; }}",
    ]
    return (
        "__kernel void k(__global int* in, __global int* out, int n) {\n"
        + "\n".join("    " + line for line in lines) + "\n}\n")


def _lsu_snapshot(engine):
    """Per-LSU timing stats with *rank-normalized* site labels.

    Each ``compile_source`` call parses fresh AST nodes, so the numeric
    part of a site label (``k:n<node_id>``) differs between the two
    compiles even though the ASTs are structurally identical. Node ids
    are assigned in parse order, so ranking them restores a stable
    correspondence: the i-th static site of one compile must carry
    exactly the timings of the i-th static site of the other.
    """
    raw = {}
    for (site, kind), lsu in engine.lsus.items():
        stats = lsu.stats
        raw[(site, kind)] = (
            stats.issued, stats.completed, stats.total_latency,
            stats.max_latency, stats.ordering_stall_cycles,
            tuple(stats.samples))

    def _site_id(site):
        kernel, _, node = site.rpartition(":n")
        return (kernel, int(node))

    ordered = sorted({site for site, _ in raw}, key=_site_id)
    rank = {site: f"{_site_id(site)[0]}:site{index}"
            for index, site in enumerate(ordered)}
    return {(rank[site], kind): value
            for (site, kind), value in raw.items()}


def _run_generated(source, n, frontend):
    fabric = Fabric(keep_lsu_samples=True)
    program = compile_source(fabric, source, frontend=frontend)
    fabric.memory.allocate("IN", _BUF).fill(np.arange(_BUF) * 3 - 5)
    fabric.memory.allocate("OUT", _BUF)
    engine = fabric.run_kernel(program.kernel("k"),
                               {"in": "IN", "out": "OUT", "n": n})
    return fabric, engine


def _assert_equivalent(fast, ref, buffers):
    fast_fabric, fast_engine = fast
    ref_fabric, ref_engine = ref
    assert fast_fabric.sim.now == ref_fabric.sim.now
    fs, rs = fast_engine.stats, ref_engine.stats
    assert (fs.iterations_issued, fs.iterations_retired) == \
        (rs.iterations_issued, rs.iterations_retired)
    assert (fs.start_cycle, fs.finish_cycle) == \
        (rs.start_cycle, rs.finish_cycle)
    assert fs.issue_stall_cycles == rs.issue_stall_cycles
    assert fs.iteration_trace == rs.iteration_trace
    assert _lsu_snapshot(fast_engine) == _lsu_snapshot(ref_engine)
    for name in buffers:
        fast_buffer = fast_fabric.memory.buffer(name)
        ref_buffer = ref_fabric.memory.buffer(name)
        assert list(fast_buffer.snapshot()) == list(ref_buffer.snapshot()), \
            f"buffer {name!r} diverged"


class TestCodegenEquivalence:
    @given(source=_kernel_sources(), n=st.integers(0, 12))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_codegen_matches_reference(self, source, n):
        program_cache_clear()
        fast = _run_generated(source, n, "codegen")
        ref = _run_generated(source, n, "reference")
        _assert_equivalent(fast, ref, ["IN", "OUT"])

    @given(n_rows=st.integers(1, 6), num=st.integers(1, 16))
    @settings(max_examples=max(4, MAX_EXAMPLES // 10), deadline=None)
    def test_listing6_matches_reference(self, n_rows, num):
        """The paper's instrumented matvec (channels + autorun services)
        behaves identically under both backends at randomized sizes."""
        from repro.frontend.listings import LISTING_6

        program_cache_clear()
        outcomes = {}
        for frontend in ("codegen", "reference"):
            fabric = Fabric(keep_lsu_samples=True)
            program = compile_source(fabric, LISTING_6, frontend=frontend)
            fabric.memory.allocate("X", n_rows * num).fill(
                np.arange(n_rows * num))
            fabric.memory.allocate("Y", num).fill(np.arange(num))
            fabric.memory.allocate("Z", n_rows)
            for name in ("I1", "I2", "I3"):
                fabric.memory.allocate(name, n_rows * 10 + 1)
            engine = fabric.run_kernel(program.kernel("matvec"), {
                "x": "X", "y": "Y", "z": "Z", "info1": "I1", "info2": "I2",
                "info3": "I3", "n": n_rows, "num": num})
            snapshots = {
                name: list(fabric.memory.buffer(name).snapshot())
                for name in ("Z", "I1", "I2", "I3")}
            outcomes[frontend] = (fabric.sim.now, snapshots,
                                  _lsu_snapshot(engine),
                                  engine.stats.iteration_trace)
            fabric.stop_autorun()
        assert outcomes["codegen"] == outcomes["reference"]
