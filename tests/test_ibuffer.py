"""Integration tests for the ibuffer autorun kernel (Listing 8 / Figure 3)."""

from __future__ import annotations

import pytest

from repro.core.commands import IBufferCommand, IBufferState, SamplingMode
from repro.core.ibuffer import IBuffer, IBufferConfig
from repro.core.logic_blocks import RawRecorderLogic, StallMonitorLogic
from repro.errors import IBufferError
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import SingleTaskKernel


class WriterKernel(SingleTaskKernel):
    """Feeds n values into one ibuffer data channel, one per iteration."""

    def __init__(self, ibuffer, unit=0, **kw):
        super().__init__(**kw)
        self.ibuffer = ibuffer
        self.unit = unit

    def iteration_space(self, args):
        return range(args["n"])

    def body(self, ctx):
        ctx.write_channel_nb(self.ibuffer.data_c[self.unit], ctx.iteration)
        yield ctx.compute(1)


def _ibuffer(fabric, **config_kw):
    defaults = dict(count=1, depth=8)
    defaults.update(config_kw)
    return IBuffer(fabric, "ib", logic_factory=lambda cu: RawRecorderLogic(),
                   config=IBufferConfig(**defaults))


class TestConstruction:
    def test_channels_declared_in_namespace(self, fabric):
        ibuffer = _ibuffer(fabric, count=3)
        assert len(fabric.channels.get_array("ib_cmd_c")) == 3
        assert len(fabric.channels.get_array("ib_data_in")) == 3
        assert len(fabric.channels.get_array("ib_out_c")) == 3

    def test_aux_channel_optional(self, fabric):
        ibuffer = _ibuffer(fabric, use_aux_channel=True)
        assert ibuffer.addr_c is not None

    def test_heterogeneous_layouts_rejected(self, fabric):
        factories = [RawRecorderLogic(), StallMonitorLogic(0)]
        with pytest.raises(IBufferError):
            IBuffer(fabric, "bad", logic_factory=lambda cu: factories[cu],
                    config=IBufferConfig(count=2, depth=4))

    def test_bad_config_rejected(self):
        with pytest.raises(IBufferError):
            IBufferConfig(count=0)
        with pytest.raises(IBufferError):
            IBufferConfig(depth=0)

    def test_autorun_starts_at_programming(self, fabric):
        ibuffer = _ibuffer(fabric)
        fabric.advance(3)
        assert ibuffer.states[0] == IBufferState.SAMPLE  # default initial


class TestSampling:
    def test_records_arriving_data_with_timestamps(self, fabric):
        ibuffer = _ibuffer(fabric, depth=16)
        fabric.run_kernel(WriterKernel(ibuffer, name="writer"), {"n": 5})
        entries = ibuffer.trace_buffers[0].entries()
        assert [e["value"] for e in entries] == [0, 1, 2, 3, 4]
        stamps = [e["timestamp"] for e in entries]
        assert stamps == sorted(stamps)

    def test_timestamp_equals_arrival_cycle(self, fabric):
        """The datum written at cycle t is stamped t (taken in the ibuffer
        when data is available at the input channel)."""
        ibuffer = _ibuffer(fabric, depth=4)
        def probe():
            yield fabric.sim.timeout(10)
            ibuffer.data_c[0].write_nb(99)
        fabric.sim.process(probe())
        fabric.advance(12)
        entries = ibuffer.trace_buffers[0].entries()
        assert entries == [{"timestamp": 10, "value": 99}]

    def test_caller_never_stalls(self, fabric):
        """Non-blocking writes succeed every cycle — the stall-free property."""
        ibuffer = _ibuffer(fabric, depth=64)
        results = []
        class Burst(SingleTaskKernel):
            def iteration_space(self, args):
                return range(20)
            def body(self, ctx):
                results.append(ctx.write_channel_nb(ibuffer.data_c[0],
                                                    ctx.iteration))
                yield ctx.compute(1)
        fabric.run_kernel(Burst(name="burst"), {})
        assert all(results)

    def test_linear_buffer_stops_when_full(self, fabric):
        ibuffer = _ibuffer(fabric, depth=3, mode=SamplingMode.LINEAR)
        fabric.run_kernel(WriterKernel(ibuffer, name="writer"), {"n": 10})
        trace = ibuffer.trace_buffers[0]
        assert trace.valid_entries == 3
        assert trace.dropped == 7

    def test_cyclic_buffer_keeps_newest(self, fabric):
        ibuffer = _ibuffer(fabric, depth=3, mode=SamplingMode.CYCLIC)
        fabric.run_kernel(WriterKernel(ibuffer, name="writer"), {"n": 10})
        values = [e["value"] for e in ibuffer.trace_buffers[0].entries()]
        assert values == [7, 8, 9]


class TestCommandProtocol:
    def _send(self, fabric, ibuffer, command, unit=0):
        ibuffer.cmd_c[unit].write_nb(int(command))
        fabric.advance(2)

    def test_stop_freezes_sampling(self, fabric):
        ibuffer = _ibuffer(fabric, depth=16)
        self._send(fabric, ibuffer, IBufferCommand.STOP)
        assert ibuffer.states[0] == IBufferState.STOP
        ibuffer.data_c[0].write_nb(5)
        fabric.advance(3)
        assert ibuffer.trace_buffers[0].valid_entries == 0
        assert ibuffer.samples_dropped[0] == 1

    def test_reset_clears_trace(self, fabric):
        ibuffer = _ibuffer(fabric, depth=16)
        ibuffer.data_c[0].write_nb(5)
        fabric.advance(3)
        assert ibuffer.trace_buffers[0].valid_entries == 1
        self._send(fabric, ibuffer, IBufferCommand.RESET)
        assert ibuffer.trace_buffers[0].valid_entries == 0
        assert ibuffer.states[0] == IBufferState.RESET

    def test_initial_reset_state_waits_for_sample(self, fabric):
        ibuffer = _ibuffer(fabric, depth=8,
                           initial_state=IBufferState.RESET)
        ibuffer.data_c[0].write_nb(1)
        fabric.advance(3)
        assert ibuffer.trace_buffers[0].valid_entries == 0
        self._send(fabric, ibuffer, IBufferCommand.SAMPLE)
        ibuffer.data_c[0].write_nb(2)
        fabric.advance(3)
        assert ibuffer.trace_buffers[0].valid_entries == 1

    def test_read_drains_to_stop(self, fabric):
        ibuffer = _ibuffer(fabric, depth=2)
        ibuffer.data_c[0].write_nb(5)
        fabric.advance(2)
        self._send(fabric, ibuffer, IBufferCommand.STOP)
        self._send(fabric, ibuffer, IBufferCommand.READ)
        # Drain the output channel as a consumer would.
        drained = []
        def consumer():
            for _ in range(ibuffer.words_per_readout):
                value = yield from ibuffer.out_c[0].read()
                drained.append(value)
        fabric.sim.process(consumer())
        fabric.advance(ibuffer.words_per_readout * 3 + 10)
        assert len(drained) == ibuffer.words_per_readout
        assert ibuffer.states[0] == IBufferState.STOP  # event-driven exit

    def test_per_unit_independence(self, fabric):
        ibuffer = _ibuffer(fabric, count=2, depth=8)
        self._send(fabric, ibuffer, IBufferCommand.STOP, unit=0)
        assert ibuffer.states[0] == IBufferState.STOP
        assert ibuffer.states[1] == IBufferState.SAMPLE


class TestResourceProfile:
    def test_memory_bits_scale_with_depth(self, fabric):
        small = _ibuffer(fabric, depth=8).resource_profile()
        big_fabric = Fabric()
        big = IBuffer(big_fabric, "ib", logic_factory=lambda cu: RawRecorderLogic(),
                      config=IBufferConfig(count=1, depth=64)).resource_profile()
        assert big.local_memory_bits == small.local_memory_bits * 8

    def test_aux_channel_adds_endpoint(self, fabric):
        without = _ibuffer(fabric).resource_profile()
        aux_fabric = Fabric()
        with_aux = IBuffer(aux_fabric, "ib",
                           logic_factory=lambda cu: RawRecorderLogic(),
                           config=IBufferConfig(count=1, depth=8,
                                                use_aux_channel=True)
                           ).resource_profile()
        assert with_aux.channel_endpoints == without.channel_endpoints + 1
