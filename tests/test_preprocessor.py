"""Tests for the minimal #define preprocessor."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.frontend.lexer import FrontendError
from repro.frontend.preprocessor import preprocess


class TestPreprocess:
    def test_define_substitutes_on_word_boundaries(self):
        expanded, macros = preprocess("#define N 10\nint x[N]; int yN = N;")
        assert "int x[10];" in expanded
        assert "yN = 10" in expanded        # yN untouched, N expanded
        assert "yN" in expanded
        assert macros == {"N": "10"}

    def test_trailing_comment_stripped(self):
        expanded, macros = preprocess("#define DEPTH 1024 // trace depth\n")
        assert macros["DEPTH"] == "1024"

    def test_chained_defines_resolve(self):
        _, macros = preprocess("#define A 4\n#define B A\nB")
        assert macros["B"] == "4"

    def test_undef_stops_expansion(self):
        expanded, _ = preprocess("#define N 10\n#undef N\nint x = N;")
        assert "int x = N;" in expanded

    def test_line_numbers_preserved(self):
        expanded, _ = preprocess("#define A 1\n\nint x = A;")
        assert expanded.splitlines()[2] == "int x = 1;"

    def test_function_macro_rejected(self):
        with pytest.raises(FrontendError, match="function-like"):
            preprocess("#define SQ(x) ((x)*(x))\n")

    def test_unknown_directive_rejected(self):
        with pytest.raises(FrontendError, match="unsupported"):
            preprocess("#include <stdio.h>\n")

    def test_predefined_macros(self):
        expanded, _ = preprocess("int x = WIDTH;",
                                 predefined={"WIDTH": "32"})
        assert "int x = 32;" in expanded


class TestPreprocessorInCompiler:
    def test_listing10_style_defines_compile(self, fabric):
        """The paper's Listing 10 opens with #define N / #define DEPTH."""
        program = compile_source(fabric, """
            #define N 3       // iBuffer Count
            #define DEPTH 8   // Trace buffer depth
            channel int cmd_c[N];
            channel int out_c[N];

            __kernel void read_host(int cmd, int id, __global int* output) {
                for (int i = 0; i < N; i++) {
                    if (i == id) write_channel_altera(cmd_c[i], cmd);
                }
                if (cmd == 3) {
                    for (int k = 0; k < DEPTH; k++) {
                        output[k] = read_channel_altera(out_c[id]);
                    }
                }
            }
        """)
        assert len(fabric.channels.get_array("cmd_c")) == 3
        assert program.macros["DEPTH"] == "8"

    def test_defined_constants_usable_in_bodies(self, fabric):
        program = compile_source(fabric, """
            #define SCALE 7
            __kernel void k(__global int* out) {
                out[0] = SCALE * 6;
            }
        """)
        fabric.memory.allocate("O", 1)
        fabric.run_kernel(program.kernel("k"), {"out": "O"})
        assert fabric.memory.buffer("O").read(0) == 42
