"""Tests for the one-call run profile report."""

from __future__ import annotations

import pytest

from repro.core.report import summarize_run
from repro.core.stall_monitor import StallMonitor
from repro.errors import ReproError
from repro.kernels.matmul import MatMulKernel, allocate_matmul_buffers
from repro.pipeline.fabric import Fabric


class TestSummarizeRun:
    def _run(self, fabric, monitor=None):
        kernel = MatMulKernel(stall_monitor=monitor)
        allocate_matmul_buffers(fabric, 3, 4, 3)
        return fabric.run_kernel(kernel, {"rows_a": 3, "col_a": 4,
                                          "col_b": 3})

    def test_plain_run_report(self, fabric):
        engine = self._run(fabric)
        text = summarize_run(fabric, engine)
        assert "Run profile: matmul" in text
        assert "pipelining" in text
        assert "busiest memory site" in text
        assert "#" in text          # the Gantt bars

    def test_with_monitor_includes_latency_section(self, fabric):
        monitor = StallMonitor(fabric, sites=2, depth=128)
        engine = self._run(fabric, monitor)
        text = summarize_run(fabric, engine, monitor=monitor)
        assert "monitored latency" in text
        assert "monitored in-flight" in text

    def test_incomplete_launch_rejected(self, fabric):
        allocate_matmul_buffers(fabric, 2, 2, 2)
        engine = fabric.launch(MatMulKernel(), {"rows_a": 2, "col_a": 2,
                                                "col_b": 2})
        with pytest.raises(ReproError):
            summarize_run(fabric, engine)

    def test_report_without_iteration_trace(self):
        fabric = Fabric(keep_lsu_samples=False)
        engine = self._run(fabric)
        text = summarize_run(fabric, engine)
        assert "Run profile" in text
        assert "pipelining" not in text   # no trace retained
