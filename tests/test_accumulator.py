"""Unit tests for loop-carried reduction accumulators."""

from __future__ import annotations

import pytest

from repro.errors import KernelError
from repro.pipeline.accumulator import Accumulator


class TestAccumulate:
    def test_sum_by_key(self, sim):
        acc = Accumulator(sim, "sum")
        acc.add("k0", 3)
        acc.add("k0", 4)
        acc.add("k1", 10)
        assert acc.value("k0") == 7
        assert acc.value("k1") == 10
        assert acc.count("k0") == 2

    def test_custom_op_and_init(self, sim):
        acc = Accumulator(sim, "max", op=max, init=float("-inf"))
        acc.add("k", 5)
        acc.add("k", 2)
        assert acc.value("k") == 5

    def test_untouched_key_returns_init(self, sim):
        acc = Accumulator(sim, "sum")
        assert acc.value("ghost") == 0
        assert acc.count("ghost") == 0


class TestCollect:
    def test_collect_fires_when_expected_reached(self, sim):
        acc = Accumulator(sim, "sum")
        results = []
        def waiter():
            value = yield acc.collect("k", expected=3)
            results.append((sim.now, value))
        def producer():
            for index in range(3):
                yield sim.timeout(2)
                acc.add("k", index)
        sim.process(waiter())
        sim.process(producer())
        sim.run()
        assert results == [(6, 3)]

    def test_collect_already_satisfied_fires_immediately(self, sim):
        acc = Accumulator(sim, "sum")
        acc.add("k", 1)
        event = acc.collect("k", expected=1)
        assert event.triggered
        assert event.value == 1

    def test_collect_zero_expected(self, sim):
        acc = Accumulator(sim, "sum")
        event = acc.collect("k", expected=0)
        assert event.triggered
        assert event.value == 0

    def test_negative_expected_rejected(self, sim):
        acc = Accumulator(sim, "sum")
        with pytest.raises(KernelError):
            acc.collect("k", expected=-1)

    def test_independent_keys_do_not_cross_fire(self, sim):
        acc = Accumulator(sim, "sum")
        event = acc.collect("a", expected=1)
        acc.add("b", 1)
        assert not event.triggered
        acc.add("a", 5)
        assert event.triggered

    def test_contribution_order_does_not_matter(self, sim):
        acc = Accumulator(sim, "sum")
        event = acc.collect("k", expected=4)
        for value in (4, 1, 3, 2):
            acc.add("k", value)
        assert event.value == 10


class TestReset:
    def test_reset_single_key(self, sim):
        acc = Accumulator(sim, "sum")
        acc.add("a", 1)
        acc.add("b", 2)
        acc.reset("a")
        assert acc.value("a") == 0
        assert acc.value("b") == 2

    def test_reset_all(self, sim):
        acc = Accumulator(sim, "sum")
        acc.add("a", 1)
        acc.reset()
        assert acc.count("a") == 0
