"""Tests for JSON/CSV exports."""

from __future__ import annotations

import json

import pytest

from repro.analysis.export import (
    csv_to_entries,
    entries_to_csv,
    entries_to_json,
    latency_samples_to_csv,
    synthesis_report_to_dict,
    synthesis_report_to_json,
)
from repro.core.stall_monitor import LatencySample
from repro.errors import TraceDecodeError


class TestEntriesCSV:
    def test_roundtrip(self):
        entries = [{"timestamp": 5, "value": 10},
                   {"timestamp": 7, "value": -3}]
        assert csv_to_entries(entries_to_csv(entries)) == entries

    def test_header_order_stable(self):
        entries = [{"b": 1, "a": 2}]
        assert entries_to_csv(entries).splitlines()[0] == "b,a"

    def test_empty_rejected(self):
        with pytest.raises(TraceDecodeError):
            entries_to_csv([])

    def test_empty_allowed_without_fields(self):
        assert entries_to_csv([], allow_empty=True) == ""

    def test_empty_allowed_with_fields(self):
        document = entries_to_csv([], allow_empty=True,
                                  fields=("ts", "value"))
        assert document == "ts,value\n"
        assert csv_to_entries(document) == []

    def test_empty_document_round_trip(self):
        assert csv_to_entries(entries_to_csv([], allow_empty=True),
                              allow_empty=True) == []

    def test_fields_override_column_order(self):
        document = entries_to_csv([{"b": 1, "a": 2}], fields=("a", "b"))
        assert document.splitlines() == ["a,b", "2,1"]

    def test_fields_mismatch_rejected(self):
        with pytest.raises(TraceDecodeError):
            entries_to_csv([{"a": 1}], fields=("a", "b"))

    def test_inconsistent_fields_rejected(self):
        with pytest.raises(TraceDecodeError):
            entries_to_csv([{"a": 1}, {"b": 2}])

    def test_malformed_row_rejected(self):
        with pytest.raises(TraceDecodeError):
            csv_to_entries("a,b\n1\n")


class TestEntriesJSON:
    def test_valid_json(self):
        entries = [{"timestamp": 1, "value": 2}]
        assert json.loads(entries_to_json(entries)) == entries


class TestLatencyCSV:
    def test_columns(self):
        samples = [LatencySample(start_cycle=10, end_cycle=25,
                                 start_value=1, end_value=2)]
        document = latency_samples_to_csv(samples)
        assert "10,25,15,1,2" in document

    def test_empty_rejected(self):
        with pytest.raises(TraceDecodeError):
            latency_samples_to_csv([])

    def test_empty_allowed_is_header_only(self):
        document = latency_samples_to_csv([], allow_empty=True)
        assert document == \
            "start_cycle,end_cycle,latency,start_value,end_value\n"
        assert csv_to_entries(document) == []


class TestSynthesisExport:
    def _report(self):
        from repro.kernels.matmul import MatMulKernel
        from repro.synthesis import Design, synthesize
        return synthesize(Design("d", kernels=[MatMulKernel()]))

    def test_dict_shape(self):
        data = synthesis_report_to_dict(self._report())
        assert data["fmax_mhz"] > 0
        assert "matmul" in data["per_kernel"]
        assert set(data["total"]) == {"alms", "registers", "memory_bits",
                                      "ram_blocks", "dsps"}

    def test_json_parses(self):
        data = json.loads(synthesis_report_to_json(self._report()))
        assert data["device"].startswith("Stratix")
