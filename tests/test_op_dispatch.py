"""Exhaustiveness and fallback behaviour of the engine's op-dispatch table.

The fast drive loop routes every yielded op either through an inlined
branch or through :data:`repro.pipeline.engine.OP_DISPATCH`. A new op
class added to :mod:`repro.pipeline.ops` without a dispatch entry would
silently fall back to the MRO walk (or, worse, to "unexpected yield"
handling) — these tests make that omission a loud failure instead.
"""

import inspect

import pytest

from repro.pipeline import engine, ops


def _concrete_op_classes():
    found = []
    for name, obj in vars(ops).items():
        if (inspect.isclass(obj) and issubclass(obj, ops.Op)
                and obj is not ops.Op):
            found.append((name, obj))
    return sorted(found)


def test_ops_module_defines_expected_surface():
    # Sanity: the scan actually sees the op IR (guards against a refactor
    # moving the classes and turning the exhaustiveness test into a no-op).
    names = {name for name, _ in _concrete_op_classes()}
    assert {"Load", "Store", "Compute", "CycleBoundary"} <= names
    assert len(names) >= 12


@pytest.mark.parametrize("name,cls", _concrete_op_classes())
def test_every_op_class_has_a_dispatch_entry(name, cls):
    assert cls in engine.OP_DISPATCH, (
        f"ops.{name} has no OP_DISPATCH entry; add one in "
        "repro/pipeline/engine.py (and an _op_* handler if needed)")


def test_dispatch_handlers_are_executor_methods():
    for cls, handler in engine.OP_DISPATCH.items():
        assert callable(handler), f"{cls.__name__} maps to non-callable"
        assert getattr(engine._OpExecutor, handler.__name__, None) is handler, (
            f"{cls.__name__} handler {handler!r} is not an _OpExecutor method")


def test_resolve_handler_memoizes_subclasses():
    class TracedLoad(ops.Load):
        __slots__ = ()

    try:
        assert TracedLoad not in engine.OP_DISPATCH
        handler = engine._resolve_handler(TracedLoad)
        assert handler is engine.OP_DISPATCH[ops.Load]
        # Memoized: the subclass now has a direct entry.
        assert engine.OP_DISPATCH[TracedLoad] is handler
    finally:
        engine.OP_DISPATCH.pop(TracedLoad, None)


def test_resolve_handler_rejects_non_ops():
    class NotAnOp:
        pass

    assert engine._resolve_handler(NotAnOp) is None
    assert NotAnOp not in engine.OP_DISPATCH
