"""Property-based tests: schedules, accumulators, memory, synthesis."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.memory.backing import AddressMap
from repro.pipeline.accumulator import Accumulator
from repro.pipeline.kernel import ResourceProfile
from repro.pipeline.schedule import i_major, k_major, ndrange_schedule
from repro.sim.core import Simulator
from repro.synthesis.cost_model import CostModel
from repro.synthesis.timing_model import TimingModel

_extent = st.integers(min_value=0, max_value=12)


class TestScheduleProperties:
    @given(outer=_extent, inner=_extent)
    @settings(max_examples=60, deadline=None)
    def test_both_orders_cover_same_space(self, outer, inner):
        assert sorted(k_major(outer, inner)) == sorted(i_major(outer, inner))
        assert len(list(k_major(outer, inner))) == outer * inner

    @given(outer=st.integers(1, 10), inner=st.integers(1, 10))
    @settings(max_examples=60, deadline=None)
    def test_interleaved_invariant(self, outer, inner):
        """No work-item issues iteration i+1 before all issued iteration i."""
        seen_inner = []
        for _, i in ndrange_schedule(outer, inner):
            seen_inner.append(i)
        assert seen_inner == sorted(seen_inner)

    @given(outer=st.integers(1, 10), inner=st.integers(1, 10))
    @settings(max_examples=60, deadline=None)
    def test_program_order_invariant(self, outer, inner):
        """No outer iteration starts before the previous one finished."""
        seen_outer = [k for k, _ in k_major(outer, inner)]
        assert seen_outer == sorted(seen_outer)


class TestAccumulatorProperties:
    @given(values=st.lists(st.integers(-10**6, 10**6), min_size=0,
                           max_size=40),
           permutation_seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_order_independence(self, values, permutation_seed):
        import random

        shuffled = list(values)
        random.Random(permutation_seed).shuffle(shuffled)
        sim = Simulator()
        in_order, out_of_order = Accumulator(sim, "a"), Accumulator(sim, "b")
        for value in values:
            in_order.add("k", value)
        for value in shuffled:
            out_of_order.add("k", value)
        assert in_order.value("k") == out_of_order.value("k") == sum(values)


class TestAddressMapProperties:
    @given(sizes=st.lists(st.integers(1, 100), min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_allocations_never_overlap(self, sizes):
        amap = AddressMap()
        stores = [amap.allocate(f"b{index}", size)
                  for index, size in enumerate(sizes)]
        spans = sorted((s.base_address, s.end_address) for s in stores)
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b

    @given(sizes=st.lists(st.integers(1, 50), min_size=1, max_size=8),
           picks=st.data())
    @settings(max_examples=60, deadline=None)
    def test_every_element_resolves_back(self, sizes, picks):
        amap = AddressMap()
        stores = [amap.allocate(f"b{index}", size)
                  for index, size in enumerate(sizes)]
        store = picks.draw(st.sampled_from(stores))
        index = picks.draw(st.integers(0, store.size - 1))
        resolved, resolved_index = amap.resolve(store.address_of(index))
        assert resolved is store
        assert resolved_index == index


_profiles = st.builds(
    ResourceProfile,
    load_sites=st.integers(0, 8),
    store_sites=st.integers(0, 4),
    adders=st.integers(0, 64),
    multipliers=st.integers(0, 32),
    logic_ops=st.integers(0, 64),
    channel_endpoints=st.integers(0, 16),
    local_memory_bits=st.integers(0, 10**6),
    control_states=st.integers(0, 32),
)


class TestSynthesisProperties:
    @given(profile=_profiles)
    @settings(max_examples=80, deadline=None)
    def test_area_non_negative(self, profile):
        vector = CostModel().profile_vector(profile)
        assert vector.alms >= 0
        assert vector.memory_bits >= 0
        assert vector.ram_blocks >= 0

    @given(profile=_profiles, extra=_profiles)
    @settings(max_examples=80, deadline=None)
    def test_adding_hardware_never_shrinks_area(self, profile, extra):
        model = CostModel()
        merged = profile.merged(extra)
        assert (model.profile_vector(merged).alms
                >= model.profile_vector(profile).alms - 1e-9)

    @given(profile=_profiles, extra=_profiles)
    @settings(max_examples=80, deadline=None)
    def test_adding_hardware_never_raises_fmax(self, profile, extra):
        timing = TimingModel()
        merged = profile.merged(extra)
        assert (timing.kernel_fmax_mhz(merged)
                <= timing.kernel_fmax_mhz(profile) + 1e-9)

    @given(profile=_profiles)
    @settings(max_examples=40, deadline=None)
    def test_retiming_always_helps_fmax(self, profile):
        timing = TimingModel()
        assert (timing.kernel_fmax_mhz(profile, retimed=True)
                >= timing.kernel_fmax_mhz(profile, retimed=False))
