"""Tests for VCD trace export."""

from __future__ import annotations

import pytest

from repro.analysis.vcd import VCDWriter, parse_vcd_changes, vcd_from_entries
from repro.errors import TraceDecodeError


class TestWriter:
    def test_header_and_signals(self):
        writer = VCDWriter(module="probe")
        writer.add_signal("value", width=32)
        document = writer.render()
        assert "$scope module probe $end" in document
        assert "$var wire 32" in document
        assert "$enddefinitions $end" in document

    def test_duplicate_signal_rejected(self):
        writer = VCDWriter()
        writer.add_signal("a")
        with pytest.raises(TraceDecodeError):
            writer.add_signal("a")

    def test_unknown_signal_change_rejected(self):
        writer = VCDWriter()
        with pytest.raises(TraceDecodeError):
            writer.change(0, "ghost", 1)

    def test_negative_time_rejected(self):
        writer = VCDWriter()
        writer.add_signal("a")
        with pytest.raises(TraceDecodeError):
            writer.change(-1, "a", 0)

    def test_changes_emitted_in_time_order(self):
        writer = VCDWriter()
        writer.add_signal("a", width=8)
        writer.change(20, "a", 2)
        writer.change(5, "a", 1)
        changes = parse_vcd_changes(writer.render())
        assert changes == [(5, "a", 1), (20, "a", 2)]

    def test_width_masking(self):
        writer = VCDWriter()
        writer.add_signal("a", width=4)
        writer.change(0, "a", 0x1F)   # 5 bits; masked to 4
        changes = parse_vcd_changes(writer.render())
        assert changes == [(0, "a", 0xF)]

    def test_write_to_file(self, tmp_path):
        writer = VCDWriter()
        writer.add_signal("a")
        writer.change(1, "a", 7)
        path = tmp_path / "trace.vcd"
        writer.write(str(path))
        assert "$timescale" in path.read_text()


class TestFromEntries:
    def test_roundtrip_trace_entries(self):
        entries = [
            {"timestamp": 10, "value": 100, "slot": 0},
            {"timestamp": 25, "value": 200, "slot": 1},
        ]
        document = vcd_from_entries(entries)
        changes = parse_vcd_changes(document)
        assert (10, "value", 100) in changes
        assert (25, "slot", 1) in changes

    def test_empty_entries_rejected(self):
        with pytest.raises(TraceDecodeError):
            vcd_from_entries([])

    def test_missing_time_field_rejected(self):
        with pytest.raises(TraceDecodeError):
            vcd_from_entries([{"value": 1}])

    def test_end_to_end_from_stall_monitor(self, fabric):
        """Real trace -> VCD -> parse-back, through the full stack."""
        from repro.core.stall_monitor import StallMonitor
        from repro.kernels.matmul import MatMulKernel, allocate_matmul_buffers
        monitor = StallMonitor(fabric, sites=2, depth=64)
        allocate_matmul_buffers(fabric, 2, 4, 2)
        fabric.run_kernel(MatMulKernel(stall_monitor=monitor),
                          {"rows_a": 2, "col_a": 4, "col_b": 2})
        entries = monitor.read_site(0)
        document = vcd_from_entries(entries, module="stall_monitor")
        changes = parse_vcd_changes(document)
        values_in_vcd = [v for _, name, v in changes if name == "value"]
        assert values_in_vcd == [e["value"] for e in entries]
