"""Tests for TraceQuery and the legacy-analysis bridges.

The bridge tests are the acceptance criterion for the query layer: a
query over a stored trace must reproduce the legacy in-memory latency and
order analyses bit-for-bit.
"""

from __future__ import annotations

import pytest

from repro.errors import TraceSchemaError
from repro.trace import (
    Aggregate,
    ColumnarStore,
    TraceHub,
    TraceQuery,
    latency_samples,
    stored_order_records,
)


@pytest.fixture()
def store():
    """A small mixed-schema store built by hand."""
    hub = TraceHub()
    for i in range(6):
        hub.emit("watch.event", 10 * i, kernel="wp", cu=i % 2,
                 site=f"wp[{i % 2}]", address=64 + i, tag=i, kind=i % 3)
    hub.emit("run.span", 0, kernel="matvec", start=0, end=500)
    hub.emit("run.span", 0, kernel="matmul", start=0, end=900)
    return ColumnarStore.from_records(hub.records, hub.registry)


class TestTraceQuery:
    def test_schema_filter(self, store):
        assert TraceQuery(store).schema("watch.event").count() == 6
        assert TraceQuery(store).schema("run.span").count() == 2
        assert TraceQuery(store).schema("nope").count() == 0

    def test_between_half_open(self, store):
        query = TraceQuery(store).schema("watch.event").between(10, 40)
        assert [r["ts"] for r in query.rows()] == [10, 20, 30]

    def test_between_open_ends(self, store):
        assert TraceQuery(store).schema("watch.event") \
            .between(since=40).count() == 2
        assert TraceQuery(store).schema("watch.event") \
            .between(until=20).count() == 2

    def test_kernel_cu_site_filters(self, store):
        assert TraceQuery(store).kernel("matmul").count() == 1
        assert TraceQuery(store).schema("watch.event").cu(1).count() == 3
        assert TraceQuery(store).site("wp[0]").count() == 3

    def test_where_payload_equality(self, store):
        assert TraceQuery(store).where(kind=0).count() == 2
        # Field absent from a schema: that segment simply cannot match.
        assert TraceQuery(store).where(end=900).count() == 1

    def test_limit(self, store):
        assert len(TraceQuery(store).schema("watch.event").limit(2).rows()) == 2

    def test_select_projection(self, store):
        pairs = TraceQuery(store).schema("watch.event").limit(2) \
            .select("ts", "address")
        assert pairs == [(0, 64), (10, 65)]

    def test_select_unknown_column_raises(self, store):
        with pytest.raises(TraceSchemaError):
            TraceQuery(store).schema("watch.event").select("nope")

    def test_records_match_rows(self, store):
        records = TraceQuery(store).schema("run.span").records()
        assert [r.kernel for r in records] == ["matvec", "matmul"]
        assert records[1].values == (0, 900)

    def test_aggregate_scalar(self, store):
        agg = TraceQuery(store).schema("watch.event").aggregate("tag")
        assert agg == Aggregate(count=6, minimum=0, maximum=5, total=15)
        assert agg.mean == 2.5

    def test_aggregate_grouped(self, store):
        by_cu = TraceQuery(store).schema("watch.event") \
            .aggregate("address", by="cu")
        assert set(by_cu) == {0, 1}
        assert by_cu[0].count == 3 and by_cu[1].count == 3

    def test_aggregate_empty(self, store):
        agg = TraceQuery(store).schema("watch.event").kernel("nope") \
            .aggregate("tag")
        assert agg.count == 0 and agg.mean == 0.0

    def test_aggregate_unknown_field_raises(self, store):
        with pytest.raises(TraceSchemaError):
            TraceQuery(store).schema("watch.event").aggregate("nope")
        with pytest.raises(TraceSchemaError):
            TraceQuery(store).schema("watch.event").aggregate("tag", by="no")

    def test_time_pruning_skips_segments(self, store):
        # All watch.event timestamps are < 100; a window past them must
        # prune the segment without scanning it.
        query = TraceQuery(store).between(since=1000)
        matched = [s for s in store.segments if query._segment_matches(s)]
        assert matched == []


class TestLegacyBridges:
    """Stored-trace analyses must equal the live in-memory results."""

    @pytest.fixture(scope="class")
    def sec51_traced(self):
        from repro.experiments import sec51
        hub = TraceHub()
        result = sec51.run(rows_a=4, col_a=4, col_b=4, trace=hub)
        store = ColumnarStore.from_records(hub.records, hub.registry)
        return result, store

    @pytest.fixture(scope="class")
    def fig2_traced(self):
        from repro.experiments import fig2
        hub = TraceHub()
        result = fig2.run(n=4, num=6, probe_i=3, trace=hub)
        store = ColumnarStore.from_records(hub.records, hub.registry)
        return result, store

    def test_latency_samples_bit_for_bit(self, sec51_traced):
        result, store = sec51_traced
        assert latency_samples(store) == result.samples

    def test_latency_summary_matches(self, sec51_traced):
        from repro.analysis.latency import summarize
        result, store = sec51_traced
        assert summarize(latency_samples(store)) == result.stats

    def test_latency_csv_matches(self, sec51_traced):
        from repro.analysis.export import latency_samples_to_csv
        result, store = sec51_traced
        assert latency_samples_to_csv(latency_samples(store)) == \
            latency_samples_to_csv(result.samples)

    def test_order_records_bit_for_bit(self, fig2_traced):
        result, store = fig2_traced
        assert stored_order_records(store, kernel="single-task") == \
            result.single_task.records
        assert stored_order_records(store, kernel="ndrange") == \
            result.ndrange.records

    def test_order_classification_matches(self, fig2_traced):
        from repro.analysis.order import classify_order
        result, store = fig2_traced
        for label, expected in [("single-task", result.single_task),
                                ("ndrange", result.ndrange)]:
            assert classify_order(stored_order_records(store, kernel=label)) \
                == expected.classification

    def test_run_spans_recorded(self, fig2_traced):
        result, store = fig2_traced
        spans = {r["kernel"]: r["end"] for r in
                 TraceQuery(store).schema("run.span").rows()}
        assert spans == {
            "single-task": result.single_task.total_cycles,
            "ndrange": result.ndrange.total_cycles,
        }
