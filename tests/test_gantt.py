"""Tests for iteration traces and the Gantt pipeline view."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.gantt import (
    concurrency_profile,
    mean_lifetime,
    peak_concurrency,
    pipelining_speedup,
    render_gantt,
)
from repro.errors import TraceDecodeError
from repro.kernels.pointer_chase import PointerChaseKernel, build_chain
from repro.kernels.vecadd import VecAddKernel
from repro.pipeline.fabric import Fabric


class TestIterationTrace:
    def test_engine_records_lifetimes(self, fabric):
        n = 8
        fabric.memory.allocate("a", n).fill(np.arange(n))
        fabric.memory.allocate("b", n).fill(np.arange(n))
        fabric.memory.allocate("c", n)
        engine = fabric.run_kernel(VecAddKernel(), {"n": n})
        trace = engine.stats.iteration_trace
        assert len(trace) == n
        assert all(end >= start for _, start, end in trace)

    def test_trace_disabled_with_flag(self):
        fabric = Fabric(keep_lsu_samples=False)
        n = 4
        fabric.memory.allocate("a", n).fill(np.arange(n))
        fabric.memory.allocate("b", n).fill(np.arange(n))
        fabric.memory.allocate("c", n)
        engine = fabric.run_kernel(VecAddKernel(), {"n": n})
        assert engine.stats.iteration_trace == []


class TestGanttAnalysis:
    def test_concurrency_profile(self):
        lifetimes = [("a", 0, 10), ("b", 5, 15), ("c", 20, 25)]
        profile = dict(concurrency_profile(lifetimes))
        assert profile[0] == 1
        assert profile[5] == 2
        assert profile[10] == 1
        assert profile[25] == 0

    def test_peak_and_mean(self):
        lifetimes = [("a", 0, 10), ("b", 0, 10), ("c", 0, 10)]
        assert peak_concurrency(lifetimes) == 3
        assert mean_lifetime(lifetimes) == 10

    def test_speedup_serial_is_one(self):
        lifetimes = [("a", 0, 10), ("b", 10, 20), ("c", 20, 30)]
        assert pipelining_speedup(lifetimes) == pytest.approx(1.0)

    def test_speedup_overlapped_above_one(self):
        lifetimes = [(i, i, i + 50) for i in range(10)]
        assert pipelining_speedup(lifetimes) > 5

    def test_empty_rejected(self):
        with pytest.raises(TraceDecodeError):
            render_gantt([])

    def test_negative_lifetime_rejected(self):
        with pytest.raises(TraceDecodeError):
            render_gantt([("x", 10, 5)])


class TestGanttRendering:
    def test_render_shape(self):
        lifetimes = [(f"i{i}", i * 4, i * 4 + 40) for i in range(6)]
        text = render_gantt(lifetimes, width=40)
        lines = text.splitlines()
        assert len(lines) == 7      # header + 6 rows
        assert all("#" in line for line in lines[1:])

    def test_row_elision(self):
        lifetimes = [(i, i, i + 10) for i in range(40)]
        text = render_gantt(lifetimes, max_rows=5)
        assert "35 more iterations" in text

    def test_pipelined_vs_serial_look_different(self):
        """The paper's point, visualized: vecadd overlaps, pointer chase
        marches strictly diagonally."""
        fabric = Fabric()
        n = 12
        fabric.memory.allocate("a", n).fill(np.arange(n))
        fabric.memory.allocate("b", n).fill(np.arange(n))
        fabric.memory.allocate("c", n)
        vec_engine = fabric.run_kernel(VecAddKernel(), {"n": n})

        chase_fabric = Fabric()
        chase_fabric.memory.allocate("ptr", 32).fill(build_chain(32))
        chase_fabric.memory.allocate("out", 1)
        chase_engine = chase_fabric.run_kernel(PointerChaseKernel(),
                                               {"start": 0, "steps": 12})

        vec_speedup = pipelining_speedup(vec_engine.stats.iteration_trace)
        chase_speedup = pipelining_speedup(chase_engine.stats.iteration_trace)
        assert vec_speedup > 3            # deeply overlapped
        assert chase_speedup == pytest.approx(1.0)   # one serialized body
        assert peak_concurrency(vec_engine.stats.iteration_trace) > 3
