"""Property-based tests for the ibuffer state machine (Figure 3)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.commands import (
    COMMAND_TRANSITIONS,
    IBufferCommand,
    IBufferState,
    next_state,
)

_commands = st.lists(st.sampled_from(list(IBufferCommand)),
                     min_size=0, max_size=40)
_states = st.sampled_from(list(IBufferState))


class TestStateMachineProperties:
    @given(start=_states, commands=_commands)
    @settings(max_examples=100, deadline=None)
    def test_always_in_valid_state(self, start, commands):
        state = start
        for command in commands:
            state = next_state(state, command)
            assert isinstance(state, IBufferState)

    @given(start=_states, commands=_commands)
    @settings(max_examples=100, deadline=None)
    def test_reset_always_reachable(self, start, commands):
        """From any reachable state, one RESET returns to RESET."""
        state = start
        for command in commands:
            state = next_state(state, command)
        assert next_state(state, IBufferCommand.RESET) == IBufferState.RESET

    @given(start=_states, command=st.sampled_from(list(IBufferCommand)))
    @settings(max_examples=50, deadline=None)
    def test_transitions_deterministic(self, start, command):
        assert next_state(start, command) == next_state(start, command)

    @given(start=_states, commands=_commands)
    @settings(max_examples=100, deadline=None)
    def test_sample_only_entered_via_command(self, start, commands):
        """SAMPLE can only be the result of an explicit SAMPLE command."""
        state = start
        for command in commands:
            new = next_state(state, command)
            if new == IBufferState.SAMPLE and state != IBufferState.SAMPLE:
                assert command == IBufferCommand.SAMPLE
            state = new

    def test_read_never_follows_read_without_reset(self):
        """Re-arming a readout requires leaving READ first."""
        assert (IBufferState.READ, IBufferCommand.READ) not in COMMAND_TRANSITIONS
