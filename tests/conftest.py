"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.pipeline.fabric import Fabric
from repro.sim.core import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def fabric() -> Fabric:
    """A fresh fabric (simulator + channels + memory)."""
    return Fabric()
