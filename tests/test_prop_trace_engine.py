"""Property tests: the vectorized trace query engine equals the reference.

``engine="vector"`` replaces the row-at-a-time reference scan with
segment pruning, match-index column sweeps, and batch materialization;
these tests pin it to ``engine="reference"`` over random stores — mixed
schemas, empty segments, non-monotone ``ts``, ``where`` on payload and
standard columns, ``limit`` crossing segment boundaries — for every
execution method, including raised errors, and byte-equality of every
exporter. The in-memory and the saved/loaded (zero-copy lazy decode)
stores are both exercised.

Example budget: ``TRACE_ENGINE_EXAMPLES`` (default 60); CI runs a
dedicated step with a larger budget.
"""

from __future__ import annotations

import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, TraceStoreError
from repro.trace import ColumnarStore, SchemaRegistry, TraceRecord, TraceSchema
from repro.trace.columnar import Segment
from repro.trace.export import store_to_csv, store_to_json, to_chrome_json
from repro.trace.query import ENGINES, TraceQuery, check_engine

MAX_EXAMPLES = int(os.environ.get("TRACE_ENGINE_EXAMPLES", "60"))

_SCHEMA_NAMES = ("prop.alpha", "prop.beta", "prop.gamma")
_KERNELS = ("matvec", "stall_mon", "")
_SITES = ("site_a", "site_b", "")

_FIELD_NAMES = st.lists(
    st.text(alphabet="abcdefgh_", min_size=1, max_size=6).filter(
        lambda s: s not in ("ts", "kernel", "cu", "site", "schema")),
    min_size=1, max_size=3, unique=True)

#: Small values so filters and ``where`` equalities actually match.
_VALUE = st.integers(min_value=-3, max_value=3)
_TS = st.integers(min_value=0, max_value=40)


@st.composite
def _stores(draw):
    """Random multi-segment store + its schemas, as (schemas, segments)."""
    schemas = [TraceSchema(name, tuple(draw(_FIELD_NAMES)))
               for name in _SCHEMA_NAMES[:draw(st.integers(1, 3))]]
    segments = []
    for _ in range(draw(st.integers(1, 5))):
        schema = draw(st.sampled_from(schemas))
        count = draw(st.integers(0, 8))
        ts_values = [draw(_TS) for _ in range(count)]
        if draw(st.booleans()):
            ts_values.sort()        # monotone segments hit the bisect path
        records = [
            TraceRecord(schema.name, ts=ts_values[i],
                        kernel=draw(st.sampled_from(_KERNELS)),
                        cu=draw(st.integers(0, 3)),
                        site=draw(st.sampled_from(_SITES)),
                        values=tuple(draw(_VALUE) for _ in schema.fields))
            for i in range(count)]
        segments.append(Segment.from_records(schema, records))
    return schemas, ColumnarStore(segments)


@st.composite
def _query_specs(draw, schemas):
    """One filter spec, engine-independent (applied once per engine)."""
    field_pool = sorted({name for schema in schemas
                         for name in schema.fields})
    spec = {}
    if draw(st.booleans()):
        spec["schemas"] = draw(st.lists(
            st.sampled_from(_SCHEMA_NAMES + ("absent.schema",)),
            min_size=1, max_size=2))
    if draw(st.booleans()):
        spec["kernels"] = draw(st.lists(
            st.sampled_from(_KERNELS + ("absent_kernel",)),
            min_size=1, max_size=2))
    if draw(st.booleans()):
        spec["sites"] = draw(st.lists(
            st.sampled_from(_SITES + ("absent_site",)),
            min_size=1, max_size=2))
    if draw(st.booleans()):
        spec["cus"] = draw(st.lists(st.integers(0, 4),
                                    min_size=1, max_size=2))
    if draw(st.booleans()):
        spec["between"] = (draw(st.none() | _TS), draw(st.none() | _TS))
    if draw(st.booleans()):
        # ``where`` over payload fields and the standard columns alike
        # (kernel/site compare raw dictionary IDs in both engines).
        names = draw(st.lists(
            st.sampled_from(field_pool + ["ts", "kernel", "cu", "site"]),
            min_size=1, max_size=2, unique=True))
        spec["where"] = {name: draw(_VALUE) for name in names}
    if draw(st.booleans()):
        # Includes the reference quirk: limit(0)/negative emits one row.
        spec["limit"] = draw(st.integers(-1, 12))
    return spec


def _build_query(store, spec, engine):
    query = TraceQuery(store, engine=engine)
    if "schemas" in spec:
        query.schema(*spec["schemas"])
    if "kernels" in spec:
        query.kernel(*spec["kernels"])
    if "sites" in spec:
        query.site(*spec["sites"])
    if "cus" in spec:
        query.cu(*spec["cus"])
    if "between" in spec:
        query.between(*spec["between"])
    if "where" in spec:
        query.where(**spec["where"])
    if "limit" in spec:
        query.limit(spec["limit"])
    return query


def _outcome(store, spec, engine, run):
    """(tag, result) of one execution — errors compare like results."""
    try:
        return ("ok", run(_build_query(store, spec, engine)))
    except (ReproError, ValueError) as exc:
        return (type(exc).__name__, str(exc))


def _loaded_copy(store):
    """The store after a save/load round trip (zero-copy lazy decode)."""
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "prop.ctb")
        store.save(path)
        return ColumnarStore.load(path)


class TestEngineEquivalence:
    @given(_stores(), st.data())
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_rows_records_count(self, bundle, data):
        schemas, store = bundle
        spec = data.draw(_query_specs(schemas))
        for candidate in (store, _loaded_copy(store)):
            for run in (lambda q: q.rows(), lambda q: q.records(),
                        lambda q: q.count()):
                assert _outcome(candidate, spec, "vector", run) == \
                    _outcome(candidate, spec, "reference", run)

    @given(_stores(), st.data())
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_select(self, bundle, data):
        schemas, store = bundle
        spec = data.draw(_query_specs(schemas))
        field_pool = sorted({name for schema in schemas
                             for name in schema.fields})
        columns = data.draw(st.lists(
            st.sampled_from(field_pool
                            + ["schema", "ts", "kernel", "cu", "site",
                               "no_such_column"]),
            max_size=3))
        run = lambda q: q.select(*columns)   # noqa: E731
        loaded = _loaded_copy(store)
        assert _outcome(loaded, spec, "vector", run) == \
            _outcome(loaded, spec, "reference", run)

    @given(_stores(), st.data())
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_aggregate(self, bundle, data):
        schemas, store = bundle
        spec = data.draw(_query_specs(schemas))
        field_pool = sorted({name for schema in schemas
                             for name in schema.fields})
        pool = field_pool + ["ts", "cu", "kernel", "site", "schema",
                             "no_such_column"]
        field = data.draw(st.sampled_from(pool))
        by = data.draw(st.none() | st.sampled_from(pool))
        run = lambda q: q.aggregate(field, by=by)   # noqa: E731
        loaded = _loaded_copy(store)
        assert _outcome(loaded, spec, "vector", run) == \
            _outcome(loaded, spec, "reference", run)

    @given(_stores())
    @settings(max_examples=max(4, MAX_EXAMPLES // 4), deadline=None)
    def test_limit_crossing_segments(self, bundle):
        _, store = bundle
        total = store.total_rows()
        for limit in (-1, 0, 1, 2, total // 2, total, total + 3):
            spec = {"limit": limit}
            for run in (lambda q: q.rows(), lambda q: q.count()):
                assert _outcome(store, spec, "vector", run) == \
                    _outcome(store, spec, "reference", run)


class TestExportByteEquality:
    @given(_stores())
    @settings(max_examples=max(8, MAX_EXAMPLES // 2), deadline=None)
    def test_all_exporters(self, bundle):
        _, store = bundle
        loaded = _loaded_copy(store)
        assert to_chrome_json(loaded, engine="vector") == \
            to_chrome_json(loaded, engine="reference")
        assert store_to_json(loaded, engine="vector") == \
            store_to_json(loaded, engine="reference")
        for schema in loaded.schemas():
            assert store_to_csv(loaded, schema, engine="vector") == \
                store_to_csv(loaded, schema, engine="reference")
            assert store_to_json(loaded, schema=schema, engine="vector") == \
                store_to_json(loaded, schema=schema, engine="reference")

    def test_special_schema_chrome_export(self):
        """The non-generic trace-event branches (spans, instants,
        counters) are byte-identical under both engines too."""
        registry = SchemaRegistry()
        records = [
            TraceRecord("latency.sample", 5, "matvec", 0, "lsu",
                        (5, 9, 4, 100, 200)),
            TraceRecord("run.span", 0, "matvec", 1, "", (0, 40)),
            TraceRecord("host.command", 2, "matvec", 0, "q0", (1, 2, 30)),
            TraceRecord("watch.event", 7, "matvec", 2, "w0", (64, 3, 0)),
            TraceRecord("watch.event", 8, "matvec", 2, "w0", (64, 3, 9)),
            TraceRecord("counter.lsu", 9, "vecadd", 0, "lsu", (10, 80, 20)),
            TraceRecord("counter.channel", 9, "vecadd", 0, "c0",
                        (4, 4, 1, 0, 2)),
        ]
        store = _loaded_copy(ColumnarStore.from_records(records, registry))
        assert to_chrome_json(store, engine="vector") == \
            to_chrome_json(store, engine="reference")


class TestEngineSelection:
    def test_engines_listing(self):
        assert ENGINES == ("vector", "reference")
        for engine in ENGINES:
            assert check_engine(engine) == engine

    def test_unknown_engine_rejected(self):
        store = ColumnarStore([])
        with pytest.raises(TraceStoreError, match="unknown trace query"):
            TraceQuery(store, engine="turbo")


class TestTraceQueryScanGate:
    def test_filtered_aggregate_speedup_floor(self):
        """The tentpole's acceptance floor: >= 5x filtered-aggregate
        throughput over ``engine="reference"`` on the ~1M-row synthetic
        bundle, with identical results."""
        from repro.perf import harness

        value, detail = harness.bench_trace_query_scan()
        assert detail["bundle_rows"] >= 900_000
        assert detail["speedup_vs_reference"] >= 5.0, (
            f"vector speedup {detail['speedup_vs_reference']:.2f}x < 5x "
            f"(vector {value:,.0f} vs reference "
            f"{detail['reference_rows_per_s']:,.0f} rows/s)")
        assert value > 0
