"""End-to-end tests: CLI trace capture -> .ctb -> exporters.

Covers the issue's acceptance pipeline: ``run fig2 --trace-out`` followed
by ``trace export --format chrome`` must produce JSON that validates
against the Chrome trace-event schema.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.trace import ColumnarStore, TraceHub
from repro.trace.export import (
    chrome_trace_events,
    store_to_csv,
    store_to_entries,
    store_to_json,
    to_chrome_json,
    validate_chrome_events,
)


@pytest.fixture(scope="module")
def fig2_bundle(tmp_path_factory):
    """A fig2 trace bundle captured through the real CLI path."""
    path = str(tmp_path_factory.mktemp("trace") / "fig2.ctb")
    code = main(["run", "fig2", "--n", "4", "--num", "6",
                 "--trace-out", path])
    assert code == 0
    return path


class TestCliPipeline:
    def test_capture_reports_bundle(self, fig2_bundle, capsys):
        store = ColumnarStore.load(fig2_bundle)
        assert store.total_rows() > 0
        assert "order.record" in store.schemas()
        assert "run.span" in store.schemas()

    def test_capture_appends_across_runs(self, fig2_bundle):
        before = ColumnarStore.load(fig2_bundle).total_rows()
        assert main(["run", "fig2", "--n", "4", "--num", "6",
                     "--trace-out", fig2_bundle]) == 0
        after = ColumnarStore.load(fig2_bundle).total_rows()
        assert after == 2 * before

    def test_trace_info(self, fig2_bundle, capsys):
        assert main(["trace", "info", fig2_bundle]) == 0
        out = capsys.readouterr().out
        assert "order.record" in out and "segment(s)" in out

    def test_trace_query_rows(self, fig2_bundle, capsys):
        assert main(["trace", "query", fig2_bundle,
                     "--schema", "run.span"]) == 0
        out = capsys.readouterr().out
        assert "single-task" in out and "row(s)" in out

    def test_trace_query_aggregate(self, fig2_bundle, capsys):
        assert main(["trace", "query", fig2_bundle,
                     "--schema", "order.record",
                     "--agg", "inner", "--by", "kernel"]) == 0
        out = capsys.readouterr().out
        assert "ndrange" in out and "mean" in out

    def test_trace_export_chrome_validates(self, fig2_bundle, tmp_path,
                                           capsys):
        out_path = tmp_path / "fig2.trace.json"
        assert main(["trace", "export", fig2_bundle,
                     "--format", "chrome", "-o", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        assert document["traceEvents"]
        assert validate_chrome_events(document["traceEvents"]) == []

    def test_trace_export_csv(self, fig2_bundle, capsys):
        assert main(["trace", "export", fig2_bundle, "--format", "csv",
                     "--schema", "order.record"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "ts,cu,seq,outer,inner"

    def test_trace_export_csv_needs_schema(self, fig2_bundle, capsys):
        assert main(["trace", "export", fig2_bundle,
                     "--format", "csv"]) == 2

    def test_trace_export_json(self, fig2_bundle, capsys):
        assert main(["trace", "export", fig2_bundle, "--format", "json",
                     "--schema", "run.span"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {row["kernel"] for row in rows} == {"single-task", "ndrange"}

    def test_trace_tool_on_missing_file(self, tmp_path, capsys):
        assert main(["trace", "info", str(tmp_path / "absent.ctb")]) == 2


class TestCliEngineParity:
    """``--engine reference`` output is byte-identical to the default."""

    def _stdout(self, capsys, argv):
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_query_rows_stdout_identical(self, fig2_bundle, capsys):
        argv = ["trace", "query", fig2_bundle, "--schema", "order.record",
                "--limit", "7"]
        assert self._stdout(capsys, argv + ["--engine", "vector"]) == \
            self._stdout(capsys, argv + ["--engine", "reference"])

    def test_query_aggregate_stdout_identical(self, fig2_bundle, capsys):
        argv = ["trace", "query", fig2_bundle, "--schema", "order.record",
                "--agg", "inner", "--by", "kernel"]
        assert self._stdout(capsys, argv + ["--engine", "vector"]) == \
            self._stdout(capsys, argv + ["--engine", "reference"])

    @pytest.mark.parametrize("fmt,extra", [
        ("chrome", []),
        ("csv", ["--schema", "order.record"]),
        ("json", []),
    ])
    def test_export_bytes_identical(self, fig2_bundle, tmp_path, capsys,
                                    fmt, extra):
        vector = tmp_path / "vector.out"
        reference = tmp_path / "reference.out"
        argv = ["trace", "export", fig2_bundle, "--format", fmt] + extra
        assert main(argv + ["--engine", "vector", "-o", str(vector)]) == 0
        assert main(argv + ["--engine", "reference",
                            "-o", str(reference)]) == 0
        assert vector.read_bytes() == reference.read_bytes()


class TestChromeExporter:
    def _store(self):
        hub = TraceHub()
        hub.emit("latency.sample", 10, kernel="mon", cu=0, site="load",
                 start_cycle=10, end_cycle=25, latency=15,
                 start_value=1, end_value=2)
        hub.emit("watch.event", 30, kernel="wp", cu=1, site="wp[1]",
                 address=64, tag=3, kind=0)
        hub.emit("counter.lsu", 40, kernel="prof", cu=0, site="lsu0",
                 accesses=9, total_latency=120, max_latency=31)
        hub.emit("run.span", 0, kernel="mon", start=0, end=100)
        hub.emit("host.command", 0, kernel="mon", site="cmd",
                 queued=0, start=5, end=90)
        return ColumnarStore.from_records(hub.records, hub.registry)

    def test_all_phases_valid(self):
        events = chrome_trace_events(self._store())
        assert validate_chrome_events(events) == []
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X", "i", "C"}

    def test_latency_becomes_span(self):
        events = chrome_trace_events(self._store())
        span = next(e for e in events if e.get("cat") == "latency.sample")
        assert (span["ph"], span["ts"], span["dur"]) == ("X", 10, 15)

    def test_process_metadata_per_kernel(self):
        events = chrome_trace_events(self._store())
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {"mon", "wp", "prof"}

    def test_counter_event_carries_fields(self):
        events = chrome_trace_events(self._store())
        counter = next(e for e in events if e["ph"] == "C")
        assert counter["args"] == {"accesses": 9, "total_latency": 120,
                                   "max_latency": 31}

    def test_document_shape(self):
        document = json.loads(to_chrome_json(self._store()))
        assert set(document) == {"traceEvents", "displayTimeUnit",
                                 "otherData"}

    def test_validator_flags_bad_events(self):
        assert validate_chrome_events([{"ph": "Z"}])
        assert validate_chrome_events([{"ph": "X", "name": "x", "pid": 1,
                                        "tid": 0, "ts": -1, "dur": 5}])
        assert validate_chrome_events([{"ph": "i", "name": "x", "pid": 1,
                                        "tid": 0, "ts": 0, "s": "q"}])
        assert validate_chrome_events([{"ph": "X", "name": "x", "pid": 1,
                                        "tid": 0, "ts": 0}])  # missing dur

    def test_flat_adapters(self):
        store = self._store()
        entries = store_to_entries(store, "watch.event")
        assert entries == [{"ts": 30, "cu": 1, "address": 64, "tag": 3,
                            "kind": 0}]
        assert store_to_csv(store, "watch.event").splitlines()[1] == \
            "30,1,64,3,0"
        rows = json.loads(store_to_json(store, schema="watch.event"))
        assert rows[0]["site"] == "wp[1]"
