"""Unit tests for the AOCL channel model."""

from __future__ import annotations

import pytest

from repro.channels.channel import Channel
from repro.errors import ChannelDepthError, ChannelUsageError
from repro.sim.core import Simulator


class TestConstruction:
    def test_negative_depth_rejected(self, sim):
        with pytest.raises(ChannelDepthError):
            Channel(sim, "c", depth=-1)

    def test_negative_compiled_depth_rejected(self, sim):
        with pytest.raises(ChannelDepthError):
            Channel(sim, "c", depth=0, compiled_depth=-2)

    def test_compiled_depth_overrides_requested(self, sim):
        channel = Channel(sim, "c", depth=0, compiled_depth=8)
        assert channel.requested_depth == 0
        assert channel.depth == 8


class TestFifoChannel:
    def test_nb_write_then_nb_read(self, sim):
        channel = Channel(sim, "c", depth=4)
        assert channel.write_nb(11)
        value, ok = channel.read_nb()
        assert (value, ok) == (11, True)

    def test_nb_read_empty_invalid(self, sim):
        channel = Channel(sim, "c", depth=2)
        value, ok = channel.read_nb()
        assert not ok
        assert channel.stats.read_failures == 1

    def test_nb_write_full_fails(self, sim):
        channel = Channel(sim, "c", depth=1)
        assert channel.write_nb(1)
        assert not channel.write_nb(2)
        assert channel.stats.write_failures == 1

    def test_fifo_ordering_preserved(self, sim):
        channel = Channel(sim, "c", depth=8)
        for value in range(5):
            channel.write_nb(value)
        drained = [channel.read_nb()[0] for _ in range(5)]
        assert drained == [0, 1, 2, 3, 4]

    def test_blocking_read_stalls_until_write(self, sim):
        channel = Channel(sim, "c", depth=2)
        got = []
        def consumer():
            value = yield from channel.read()
            got.append((sim.now, value))
        def producer():
            yield sim.timeout(7)
            yield from channel.write("v")
        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(7, "v")]
        assert channel.stats.read_stall_cycles == 7

    def test_blocking_write_stalls_when_full(self, sim):
        channel = Channel(sim, "c", depth=1)
        channel.write_nb("old")
        done = []
        def producer():
            yield from channel.write("new")
            done.append(sim.now)
        def consumer():
            yield sim.timeout(5)
            channel.read_nb()
        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert done == [5]
        assert channel.stats.write_stall_cycles == 5

    def test_max_occupancy_tracked(self, sim):
        channel = Channel(sim, "c", depth=4)
        for value in range(3):
            channel.write_nb(value)
        assert channel.stats.max_occupancy == 3


class TestDepthZeroRegister:
    """Listing 1 semantics: nb writes keep the most recent value visible."""

    def test_nb_write_always_succeeds(self, sim):
        channel = Channel(sim, "c", depth=0)
        for value in range(10):
            assert channel.write_nb(value)

    def test_read_nb_sees_latest_value(self, sim):
        channel = Channel(sim, "c", depth=0)
        channel.write_nb(1)
        channel.write_nb(2)
        channel.write_nb(3)
        assert channel.read_nb() == (3, True)

    def test_register_read_is_non_destructive(self, sim):
        channel = Channel(sim, "c", depth=0)
        channel.write_nb(42)
        assert channel.read_nb() == (42, True)
        assert channel.read_nb() == (42, True)

    def test_read_nb_before_any_write_invalid(self, sim):
        channel = Channel(sim, "c", depth=0)
        value, ok = channel.read_nb()
        assert not ok

    def test_blocking_read_waits_for_first_write(self, sim):
        channel = Channel(sim, "c", depth=0)
        got = []
        def consumer():
            value = yield from channel.read()
            got.append((sim.now, value))
        def producer():
            yield sim.timeout(3)
            channel.write_nb("first")
        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(3, "first")]


class TestDepthZeroRendezvous:
    """Listing 5 semantics: blocking writes complete only on a read."""

    def test_blocking_write_waits_for_reader(self, sim):
        channel = Channel(sim, "c", depth=0)
        events = []
        def producer():
            yield from channel.write("seq1")
            events.append(("write-done", sim.now))
        def consumer():
            yield sim.timeout(8)
            value = yield from channel.read()
            events.append(("read", value, sim.now))
        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert ("write-done", 8) in events
        assert ("read", "seq1", 8) in events

    def test_sequence_counter_advances_once_per_read(self, sim):
        channel = Channel(sim, "c", depth=0)
        def seq_srv():
            count = 0
            while True:
                count += 1
                yield from channel.write(count)
        sim.process(seq_srv())
        got = []
        def consumer():
            for delay in (3, 1, 10):
                yield sim.timeout(delay)
                value = yield from channel.read()
                got.append(value)
        sim.process(consumer())
        sim.run(until=100)
        assert got == [1, 2, 3]

    def test_read_nb_prefers_waiting_writer_over_register(self, sim):
        channel = Channel(sim, "c", depth=0)
        channel.write_nb("register")
        def producer():
            yield from channel.write("rendezvous")
        sim.process(producer())
        sim.run()
        assert channel.read_nb() == ("rendezvous", True)


class TestEndpointDiscipline:
    def test_second_producer_rejected(self, sim):
        channel = Channel(sim, "c", depth=1)
        channel.bind_producer("kernel_a")
        channel.bind_producer("kernel_a")  # same owner is fine
        with pytest.raises(ChannelUsageError):
            channel.bind_producer("kernel_b")

    def test_second_consumer_rejected(self, sim):
        channel = Channel(sim, "c", depth=1)
        channel.bind_consumer("kernel_a")
        with pytest.raises(ChannelUsageError):
            channel.bind_consumer("kernel_b")

    def test_producer_and_consumer_may_differ(self, sim):
        channel = Channel(sim, "c", depth=1)
        channel.bind_producer("kernel_a")
        channel.bind_consumer("kernel_b")
        assert channel.producer == "kernel_a"
        assert channel.consumer == "kernel_b"


class TestCompiledDepthPitfall:
    """§3.1 limitation 1: overridden depth makes timestamps stale."""

    def test_overridden_depth_buffers_stale_values(self, sim):
        channel = Channel(sim, "c", depth=0, compiled_depth=4)
        # The counter writes 1..6; a depth-4 FIFO keeps the OLDEST four.
        for value in range(1, 7):
            channel.write_nb(value)
        value, ok = channel.read_nb()
        assert ok
        assert value == 1  # stale: not the most recent (6)

    def test_honoured_depth_zero_returns_freshest(self, sim):
        channel = Channel(sim, "c", depth=0)
        for value in range(1, 7):
            channel.write_nb(value)
        assert channel.read_nb() == (6, True)
