"""The paper's listings, compiled from source and executed.

The strongest fidelity statement this reproduction can make: the code the
paper printed runs, and behaves as the paper says it does.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend import compile_source, parse
from repro.frontend.listings import (
    ALL_LISTINGS,
    LISTING_2,
    LISTING_4,
    LISTING_7,
    LISTING_8_DEFINES,
    LISTING_8_IBUFFER,
)
from repro.hdl.library import HDLLibrary
from repro.pipeline.fabric import Fabric


class TestAllListingsParse:
    @pytest.mark.parametrize("number", sorted(ALL_LISTINGS))
    def test_parses(self, number):
        program = parse(ALL_LISTINGS[number])
        assert program.kernels


class TestListing2:
    def test_persistent_timestamps_measure_the_event(self, fabric):
        program = compile_source(fabric, LISTING_2)
        n = 16
        fabric.memory.allocate("X", n).fill(np.arange(n))
        fabric.memory.allocate("Y", n).fill(np.ones(n, dtype=np.int64))
        fabric.memory.allocate("Z", 1)
        fabric.memory.allocate("T", 2)
        fabric.run_kernel(program.kernel("dot_product"),
                          {"x": "X", "y": "Y", "z": "Z", "times": "T",
                           "n": n})
        assert fabric.memory.buffer("Z").read(0) == np.arange(n).sum()
        start_t, end_t = fabric.memory.buffer("T").snapshot()
        assert end_t > start_t   # the event took cycles


class TestListing4:
    def test_hdl_timestamps_measure_the_event(self, fabric):
        library = HDLLibrary(fabric.sim)
        library.add_get_time()
        program = compile_source(fabric, LISTING_4, hdl_library=library)
        n = 12
        fabric.memory.allocate("X", n).fill(np.arange(n))
        fabric.memory.allocate("Y", n).fill(np.ones(n, dtype=np.int64))
        fabric.memory.allocate("Z", 1)
        fabric.memory.allocate("T", 2)
        fabric.run_kernel(program.kernel("dot_product"),
                          {"x": "X", "y": "Y", "z": "Z", "times": "T",
                           "n": n})
        start_t, end_t = fabric.memory.buffer("T").snapshot()
        assert end_t > start_t


class TestListing7:
    def test_figure2b_order_from_source(self, fabric):
        program = compile_source(fabric, LISTING_7)
        n_rows, num = 6, 15
        fabric.memory.allocate("X", n_rows * num).fill(
            np.arange(n_rows * num))
        fabric.memory.allocate("Y", num).fill(np.arange(num))
        fabric.memory.allocate("Z", n_rows)
        for name in ("I1", "I2", "I3"):
            fabric.memory.allocate(name, n_rows * 10 + 1)
        fabric.run_kernel(program.kernel("matvec"), {
            "__global_size": n_rows, "x": "X", "y": "Y", "z": "Z",
            "info1": "I1", "info2": "I2", "info3": "I3", "num": num})

        z = fabric.memory.buffer("Z").snapshot()
        expected = (np.arange(n_rows * num).reshape(n_rows, num)
                    * np.arange(num)).sum(axis=1)
        assert np.array_equal(z, expected)

        info2 = fabric.memory.buffer("I2").snapshot()
        info3 = fabric.memory.buffer("I3").snapshot()
        first = [(int(info2[s]), int(info3[s]))
                 for s in range(1, n_rows + 1)]
        # Figure 2(b): all work-items issue i=0 before any issues i=1.
        assert first == [(k, 0) for k in range(n_rows)]


class TestListing8IBuffer:
    """The OpenCL-coded ibuffer: full sample -> stop -> read protocol."""

    def _setup(self, fabric):
        program = compile_source(fabric, LISTING_8_IBUFFER,
                                 defines=LISTING_8_DEFINES)
        fabric.memory.allocate("OUT", LISTING_8_DEFINES["DEPTH"])
        return program

    def test_records_and_reads_back(self, fabric):
        program = self._setup(fabric)
        data_in = program.channel("data_in")
        # Feed five samples while SAMPLE (the initial state).
        for value in (11, 22, 33, 44, 55):
            data_in.write_nb(value)
            fabric.advance(2)
        # Host: STOP, then READ via the Listing 10 kernel.
        fabric.run_kernel(program.kernel("read_host"),
                          {"cmd": 2, "output": "OUT"})
        fabric.advance(4)
        fabric.run_kernel(program.kernel("read_host"),
                          {"cmd": 3, "output": "OUT"})
        fabric.advance(4)
        out = list(fabric.memory.buffer("OUT").snapshot())
        assert out[:5] == [11, 22, 33, 44, 55]

    def test_reset_clears_write_pointer(self, fabric):
        program = self._setup(fabric)
        data_in = program.channel("data_in")
        data_in.write_nb(99)
        fabric.advance(2)
        fabric.run_kernel(program.kernel("read_host"),
                          {"cmd": 0, "output": "OUT"})   # RESET
        fabric.advance(4)
        fabric.run_kernel(program.kernel("read_host"),
                          {"cmd": 1, "output": "OUT"})   # SAMPLE again
        fabric.advance(4)
        data_in.write_nb(7)
        fabric.advance(2)
        fabric.run_kernel(program.kernel("read_host"),
                          {"cmd": 3, "output": "OUT"})   # READ
        fabric.advance(4)
        out = list(fabric.memory.buffer("OUT").snapshot())
        assert out[0] == 7   # the pre-reset 99 is gone

    def test_data_ignored_while_stopped(self, fabric):
        program = self._setup(fabric)
        data_in = program.channel("data_in")
        fabric.run_kernel(program.kernel("read_host"),
                          {"cmd": 2, "output": "OUT"})   # STOP
        fabric.advance(4)
        data_in.write_nb(123)
        fabric.advance(2)
        fabric.run_kernel(program.kernel("read_host"),
                          {"cmd": 3, "output": "OUT"})   # READ
        fabric.advance(4)
        out = list(fabric.memory.buffer("OUT").snapshot())
        assert 123 not in out


class TestListing6:
    def test_figure2a_order_from_source(self, fabric):
        """The single-task form executes in program order — Figure 2(a)."""
        from repro.frontend.listings import LISTING_6
        program = compile_source(fabric, LISTING_6)
        n_rows, num = 5, 12
        fabric.memory.allocate("X", n_rows * num).fill(
            np.arange(n_rows * num))
        fabric.memory.allocate("Y", num).fill(np.arange(num))
        fabric.memory.allocate("Z", n_rows)
        for name in ("I1", "I2", "I3"):
            fabric.memory.allocate(name, n_rows * 10 + 1)
        fabric.run_kernel(program.kernel("matvec"), {
            "x": "X", "y": "Y", "z": "Z", "info1": "I1", "info2": "I2",
            "info3": "I3", "n": n_rows, "num": num})

        z = fabric.memory.buffer("Z").snapshot()
        expected = (np.arange(n_rows * num).reshape(n_rows, num)
                    * np.arange(num)).sum(axis=1)
        assert np.array_equal(z, expected)

        from repro.analysis.order import classify_order, order_records
        records = order_records(fabric.memory.buffer("I1").snapshot(),
                                fabric.memory.buffer("I2").snapshot(),
                                fabric.memory.buffer("I3").snapshot(),
                                count=n_rows * 10)
        assert classify_order(records) == "program-order"

    def test_listing6_and_7_disagree_on_order(self):
        """The complete Figure 2 comparison, both sides from source."""
        from repro.analysis.order import classify_order, order_records
        from repro.frontend.listings import LISTING_6, LISTING_7

        orders = {}
        for number, source in ((6, LISTING_6), (7, LISTING_7)):
            fabric = Fabric()
            program = compile_source(fabric, source)
            n_rows, num = 4, 11
            fabric.memory.allocate("X", n_rows * num).fill(
                np.arange(n_rows * num))
            fabric.memory.allocate("Y", num).fill(np.arange(num))
            fabric.memory.allocate("Z", n_rows)
            for name in ("I1", "I2", "I3"):
                fabric.memory.allocate(name, n_rows * 10 + 1)
            args = {"x": "X", "y": "Y", "z": "Z", "info1": "I1",
                    "info2": "I2", "info3": "I3", "num": num}
            if number == 6:
                args["n"] = n_rows
            else:
                args["__global_size"] = n_rows
            fabric.run_kernel(program.kernel("matvec"), args)
            records = order_records(fabric.memory.buffer("I1").snapshot(),
                                    fabric.memory.buffer("I2").snapshot(),
                                    fabric.memory.buffer("I3").snapshot(),
                                    count=n_rows * 10)
            orders[number] = classify_order(records)
        assert orders[6] == "program-order"
        assert orders[7] == "interleaved"
