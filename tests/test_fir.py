"""Tests for the streaming FIR channel pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import KernelArgumentError
from repro.kernels.fir import build_fir_pipeline, expected_fir, run_fir
from repro.pipeline.fabric import Fabric


class TestFIRCorrectness:
    def test_impulse_response_is_the_taps(self, fabric):
        taps = [3, 2, 1]
        impulse = np.zeros(8, dtype=np.int64)
        impulse[0] = 1
        filtered = run_fir(fabric, taps, impulse)
        assert list(filtered[:3]) == taps
        assert (filtered[3:] == 0).all()

    def test_matches_reference_on_random_signal(self, fabric):
        rng = np.random.default_rng(3)
        signal = rng.integers(-20, 20, size=32)
        taps = [1, -2, 4]
        filtered = run_fir(fabric, taps, signal)
        assert np.array_equal(filtered, expected_fir(taps, signal))

    def test_single_tap_scales(self, fabric):
        signal = np.arange(10)
        filtered = run_fir(fabric, [5], signal)
        assert np.array_equal(filtered, signal * 5)

    def test_empty_taps_rejected(self, fabric):
        with pytest.raises(KernelArgumentError):
            build_fir_pipeline(fabric, [])


class TestFIRPipelineDynamics:
    def test_stages_overlap(self, fabric):
        """All three stages run concurrently (dataflow, not phases)."""
        signal = np.arange(64)
        run_fir(fabric, [1, 1], signal)
        engines = {engine.kernel.name: engine for engine in fabric.engines}
        reader, writer = engines["fir_reader"], engines["fir_writer"]
        # The writer starts long before the reader finishes.
        assert writer.stats.start_cycle < reader.stats.finish_cycle

    def test_channel_stall_counters_expose_imbalance(self, fabric):
        """The serial FIR stage is slower than the reader: the raw channel
        backs up and the stall counters show it — the §6 vendor-profiler
        signal for channel-connected designs."""
        signal = np.arange(64)
        # An expensive un-unrolled MAC loop makes the filter the bottleneck.
        run_fir(fabric, [1, 2, 3, 4, 5, 6, 7, 8], signal, channel_depth=2,
                mac_cycles_per_tap=3)
        raw = fabric.channels.get("fir_raw")
        assert raw.stats.write_stall_cycles > 0

    def test_deeper_channels_reduce_stalls(self):
        shallow_fabric = Fabric()
        run_fir(shallow_fabric, [1, 2], np.arange(64), channel_depth=2)
        deep_fabric = Fabric()
        run_fir(deep_fabric, [1, 2], np.arange(64), channel_depth=64)
        shallow = shallow_fabric.channels.get("fir_raw").stats.write_stall_cycles
        deep = deep_fabric.channels.get("fir_raw").stats.write_stall_cycles
        assert deep <= shallow

    def test_synthesis_scales_with_taps(self, fabric):
        from repro.synthesis import Design, synthesize
        small = build_fir_pipeline(Fabric(), [1, 2])
        large = build_fir_pipeline(Fabric(), [1, 2, 3, 4, 5, 6, 7, 8])
        small_report = synthesize(Design("s", kernels=[small["fir"]]))
        large_report = synthesize(Design("l", kernels=[large["fir"]]))
        assert large_report.total.dsps > small_report.total.dsps
