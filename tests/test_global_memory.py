"""Unit tests for the global memory controller."""

from __future__ import annotations

import pytest

from repro.errors import AddressError
from repro.memory.global_memory import GlobalMemory, GlobalMemoryConfig
from repro.sim.core import Simulator


def _loader(sim, memory, name, index, out):
    def body():
        value = yield memory.load(name, index)
        out.append((sim.now, value))
    return body()


class TestConfigValidation:
    def test_bad_banks_rejected(self):
        with pytest.raises(AddressError):
            GlobalMemoryConfig(banks=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(AddressError):
            GlobalMemoryConfig(pipe_latency=-1)

    def test_zero_outstanding_rejected(self):
        with pytest.raises(AddressError):
            GlobalMemoryConfig(max_outstanding=0)


class TestLoadTiming:
    def test_first_load_costs_pipe_plus_row_miss(self, sim):
        memory = GlobalMemory(sim)
        memory.allocate("x", 8).fill(range(8))
        out = []
        sim.process(_loader(sim, memory, "x", 0, out))
        sim.run()
        config = memory.config
        expected = (config.pipe_latency + config.row_miss_cycles
                    + config.bank_busy_cycles)
        assert out == [(expected, 0)]

    def test_row_hit_cheaper_than_row_miss(self, sim):
        memory = GlobalMemory(sim)
        memory.allocate("x", 512).fill(range(512))
        times = []
        def body():
            start = sim.now
            yield memory.load("x", 0)        # row miss
            times.append(sim.now - start)
            start = sim.now
            yield memory.load("x", 1)        # same row: hit
            times.append(sim.now - start)
        sim.process(body())
        sim.run()
        assert times[1] < times[0]
        assert memory.stats.row_hits == 1
        assert memory.stats.row_misses == 1

    def test_same_bank_accesses_serialize(self, sim):
        memory = GlobalMemory(sim)
        memory.allocate("x", 4096).fill(range(4096))
        completions = []
        def issuer():
            # Two concurrent loads to the same row/bank.
            first = memory.load("x", 0)
            second = memory.load("x", 2)
            first.add_callback(lambda e: completions.append(("first", sim.now)))
            second.add_callback(lambda e: completions.append(("second", sim.now)))
            yield sim.timeout(0)
        sim.process(issuer())
        sim.run()
        assert completions[0][0] == "first"
        assert completions[1][1] > completions[0][1]

    def test_different_banks_overlap(self, sim):
        config = GlobalMemoryConfig(banks=8, row_bytes=64)
        memory = GlobalMemory(sim, config)
        memory.allocate("x", 64).fill(range(64))
        completions = []
        def issuer():
            # Elements 0 and 8 are 64 bytes apart: adjacent rows, banks 0/1.
            a = memory.load("x", 0)
            b = memory.load("x", 8)
            a.add_callback(lambda e: completions.append(sim.now))
            b.add_callback(lambda e: completions.append(sim.now))
            yield sim.timeout(0)
        sim.process(issuer())
        sim.run()
        assert completions[0] == completions[1]  # fully parallel banks

    def test_load_returns_current_value_at_completion(self, sim):
        memory = GlobalMemory(sim)
        store = memory.allocate("x", 4)
        out = []
        sim.process(_loader(sim, memory, "x", 1, out))
        store.write(1, 123)  # written before the load completes
        sim.run()
        assert out[0][1] == 123

    def test_out_of_range_load_raises_immediately(self, sim):
        memory = GlobalMemory(sim)
        memory.allocate("x", 4)
        with pytest.raises(AddressError):
            memory.load("x", 10)


class TestStores:
    def test_posted_store_unblocks_early_commits_late(self, sim):
        memory = GlobalMemory(sim)
        store = memory.allocate("x", 4)
        resumed = []
        def body():
            yield memory.store("x", 0, 9)
            resumed.append(sim.now)
        sim.process(body())
        sim.run(until=memory.config.posted_write_latency + 1)
        assert resumed == [memory.config.posted_write_latency]
        assert memory.pending_commits == 1
        sim.run()
        assert memory.pending_commits == 0
        assert store.read(0) == 9

    def test_drained_event_waits_for_commits(self, sim):
        memory = GlobalMemory(sim)
        memory.allocate("x", 4)
        drained_at = []
        def body():
            yield memory.store("x", 0, 1)
            yield memory.drained()
            drained_at.append(sim.now)
        sim.process(body())
        sim.run()
        assert drained_at[0] > memory.config.posted_write_latency

    def test_drained_immediate_when_no_stores(self, sim):
        memory = GlobalMemory(sim)
        event = memory.drained()
        assert event.triggered


class TestStats:
    def test_mean_latency_accumulates(self, sim):
        memory = GlobalMemory(sim)
        memory.allocate("x", 8).fill(range(8))
        def body():
            yield memory.load("x", 0)
            yield memory.load("x", 1)
        sim.process(body())
        sim.run()
        assert memory.stats.loads == 2
        assert memory.stats.mean_load_latency > 0

    def test_empty_stats_mean_zero(self, sim):
        memory = GlobalMemory(sim)
        assert memory.stats.mean_load_latency == 0.0


class TestConfigPhysicality:
    def test_hit_slower_than_miss_rejected(self):
        with pytest.raises(AddressError):
            GlobalMemoryConfig(row_hit_cycles=30, row_miss_cycles=10)
