"""Integration tests for the §5.1 stall monitor."""

from __future__ import annotations

import pytest

from repro.core.commands import IBufferState, SamplingMode
from repro.core.stall_monitor import StallMonitor, caller_site_profile
from repro.errors import IBufferError
from repro.kernels.matmul import MatMulKernel, allocate_matmul_buffers
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import SingleTaskKernel


class TimedEvent(SingleTaskKernel):
    """Brackets a known-duration event with snapshots (deterministic)."""

    def __init__(self, monitor, duration, n, **kw):
        super().__init__(**kw)
        self.monitor = monitor
        self.duration = duration
        self.count = n

    def iteration_space(self, args):
        return range(self.count)

    def body(self, ctx):
        self.monitor.take_snapshot(ctx, 0, ctx.iteration)
        yield ctx.compute(self.duration)
        self.monitor.take_snapshot(ctx, 1, ctx.iteration)


class TestValidation:
    def test_zero_sites_rejected(self, fabric):
        with pytest.raises(IBufferError):
            StallMonitor(fabric, sites=0)

    def test_bad_site_index_rejected(self, fabric):
        monitor = StallMonitor(fabric, sites=2, depth=8)
        class Bad(SingleTaskKernel):
            def iteration_space(self, args):
                return [0]
            def body(self, ctx):
                monitor.take_snapshot(ctx, 5, 0)
                yield ctx.compute(1)
        from repro.errors import ProcessError
        with pytest.raises(ProcessError):
            fabric.run_kernel(Bad(name="bad"), {})


class TestLatencyMeasurement:
    def test_known_duration_measured_exactly(self, fabric):
        monitor = StallMonitor(fabric, sites=2, depth=32)
        kernel = TimedEvent(monitor, duration=23, n=4, name="timed")
        fabric.run_kernel(kernel, {})
        samples = monitor.latencies(0, 1)
        assert [s.latency for s in samples] == [23, 23, 23, 23]

    def test_values_recorded_alongside(self, fabric):
        monitor = StallMonitor(fabric, sites=2, depth=32)
        kernel = TimedEvent(monitor, duration=5, n=3, name="timed")
        fabric.run_kernel(kernel, {})
        samples = monitor.latencies(0, 1)
        assert [s.start_value for s in samples] == [0, 1, 2]
        assert [s.end_value for s in samples] == [0, 1, 2]

    def test_matmul_load_latency_matches_lsu_truth(self, fabric):
        monitor = StallMonitor(fabric, sites=2, depth=256)
        kernel = MatMulKernel(stall_monitor=monitor)
        allocate_matmul_buffers(fabric, 3, 4, 3)
        engine = fabric.run_kernel(kernel, {"rows_a": 3, "col_a": 4,
                                            "col_b": 3})
        measured = [s.latency for s in monitor.latencies(0, 1)]
        def line_of(lsu):
            _, _, tail = lsu.site.rpartition("@L")
            return int(tail)
        data_a_lsu = min((lsu for (s, k), lsu in engine.lsus.items()
                          if k == "load"), key=line_of)
        assert measured == data_a_lsu.stats.samples

    def test_trace_window_bounded_by_depth(self, fabric):
        monitor = StallMonitor(fabric, sites=2, depth=4,
                               mode=SamplingMode.LINEAR)
        kernel = TimedEvent(monitor, duration=3, n=10, name="timed")
        fabric.run_kernel(kernel, {})
        assert len(monitor.latencies(0, 1)) == 4  # window == DEPTH

    def test_cyclic_mode_keeps_last_window(self, fabric):
        monitor = StallMonitor(fabric, sites=2, depth=4,
                               mode=SamplingMode.CYCLIC)
        kernel = TimedEvent(monitor, duration=3, n=10, name="timed")
        fabric.run_kernel(kernel, {})
        samples = monitor.latencies(0, 1)
        assert [s.start_value for s in samples] == [6, 7, 8, 9]


class TestProfiles:
    def test_monitor_profile_scales_with_sites(self, fabric):
        two = StallMonitor(fabric, sites=2, depth=16, name="m2")
        other = Fabric()
        four = StallMonitor(other, sites=4, depth=16, name="m4")
        assert (four.resource_profile().local_memory_bits
                == 2 * two.resource_profile().local_memory_bits)

    def test_caller_site_profile_counts_endpoints(self):
        assert caller_site_profile(sites=3).channel_endpoints == 3

    def test_kernels_listed_for_design(self, fabric):
        monitor = StallMonitor(fabric, sites=2, depth=16)
        kernels = monitor.kernels()
        assert monitor.ibuffer in kernels
        assert monitor.host.kernel in kernels
