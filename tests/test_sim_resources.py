"""Unit tests for Store and Resource."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.core import Simulator
from repro.sim.resources import Resource, Store


class TestStoreBasics:
    def test_negative_capacity_rejected(self, sim):
        with pytest.raises(SimulationError):
            Store(sim, capacity=-1)

    def test_try_put_try_get_roundtrip(self, sim):
        store = Store(sim, capacity=2)
        assert store.try_put("x")
        assert store.level == 1
        value, ok = store.try_get()
        assert (value, ok) == ("x", True)
        assert store.level == 0

    def test_try_get_empty_fails(self, sim):
        store = Store(sim, capacity=1)
        value, ok = store.try_get()
        assert not ok and value is None

    def test_try_put_full_fails(self, sim):
        store = Store(sim, capacity=1)
        assert store.try_put(1)
        assert not store.try_put(2)
        assert store.is_full

    def test_fifo_order(self, sim):
        store = Store(sim, capacity=5)
        for item in (1, 2, 3):
            store.try_put(item)
        drained = [store.try_get()[0] for _ in range(3)]
        assert drained == [1, 2, 3]


class TestStoreBlocking:
    def test_get_blocks_until_put(self, sim):
        store = Store(sim, capacity=1)
        got = []
        def consumer():
            value = yield store.get()
            got.append((sim.now, value))
        def producer():
            yield sim.timeout(6)
            yield store.put("late")
        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(6, "late")]

    def test_put_blocks_when_full(self, sim):
        store = Store(sim, capacity=1)
        store.try_put("first")
        times = []
        def producer():
            yield store.put("second")
            times.append(sim.now)
        def consumer():
            yield sim.timeout(9)
            yield store.get()
        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert times == [9]

    def test_zero_capacity_rendezvous(self, sim):
        store = Store(sim, capacity=0)
        log = []
        def producer():
            yield store.put("hand-off")
            log.append(("put-done", sim.now))
        def consumer():
            yield sim.timeout(4)
            value = yield store.get()
            log.append(("got", value, sim.now))
        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert ("got", "hand-off", 4) in log
        assert ("put-done", 4) in log

    def test_try_put_to_waiting_getter_bypasses_buffer(self, sim):
        store = Store(sim, capacity=0)
        got = []
        def consumer():
            value = yield store.get()
            got.append(value)
        sim.process(consumer())
        sim.run()  # consumer now blocked
        assert store.try_put("direct")
        sim.run()
        assert got == ["direct"]

    def test_waiting_getters_fifo(self, sim):
        store = Store(sim, capacity=4)
        got = []
        for name in ("a", "b"):
            def consumer(n=name):
                value = yield store.get()
                got.append((n, value))
            sim.process(consumer())
        def producer():
            yield sim.timeout(1)
            store.try_put(1)
            store.try_put(2)
        sim.process(producer())
        sim.run()
        assert got == [("a", 1), ("b", 2)]


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_exclusive_access_serializes(self, sim):
        resource = Resource(sim, capacity=1)
        schedule = []
        def user(name, hold):
            request = resource.request()
            yield request
            schedule.append((name, "start", sim.now))
            yield sim.timeout(hold)
            resource.release(request)
            schedule.append((name, "end", sim.now))
        sim.process(user("a", 5))
        sim.process(user("b", 3))
        sim.run()
        assert schedule == [("a", "start", 0), ("a", "end", 5),
                            ("b", "start", 5), ("b", "end", 8)]

    def test_capacity_two_allows_overlap(self, sim):
        resource = Resource(sim, capacity=2)
        starts = []
        def user(name):
            request = resource.request()
            yield request
            starts.append((name, sim.now))
            yield sim.timeout(4)
            resource.release(request)
        sim.process(user("a"))
        sim.process(user("b"))
        sim.run()
        assert starts == [("a", 0), ("b", 0)]

    def test_release_waiting_request_cancels_it(self, sim):
        resource = Resource(sim, capacity=1)
        first = resource.request()
        second = resource.request()
        assert not second.triggered
        resource.release(second)  # cancel while queued
        resource.release(first)
        assert resource.count == 0
