"""Tests for the trace schema registry and the streaming hub."""

from __future__ import annotations

import pytest

from repro.errors import TraceSchemaError
from repro.trace import (
    BUILTIN_SCHEMAS,
    MemorySink,
    SchemaRegistry,
    TraceHub,
    TraceRecord,
    TraceSchema,
)


class TestTraceSchema:
    def test_columns_include_standard(self):
        schema = TraceSchema("x", ("a", "b"))
        assert schema.columns == ("ts", "kernel", "cu", "site", "a", "b")

    def test_reserved_field_rejected(self):
        with pytest.raises(TraceSchemaError):
            TraceSchema("x", ("ts",))
        with pytest.raises(TraceSchemaError):
            TraceSchema("x", ("schema",))

    def test_duplicate_fields_rejected(self):
        with pytest.raises(TraceSchemaError):
            TraceSchema("x", ("a", "a"))

    def test_empty_name_rejected(self):
        with pytest.raises(TraceSchemaError):
            TraceSchema("", ("a",))

    def test_pack_strict(self):
        schema = TraceSchema("x", ("a", "b"))
        assert schema.pack({"a": 1, "b": 2}) == (1, 2)
        with pytest.raises(TraceSchemaError):
            schema.pack({"a": 1})
        with pytest.raises(TraceSchemaError):
            schema.pack({"a": 1, "b": 2, "c": 3})


class TestSchemaRegistry:
    def test_builtins_present(self):
        registry = SchemaRegistry()
        for schema in BUILTIN_SCHEMAS:
            assert schema.name in registry
        assert registry.get("latency.sample").fields == (
            "start_cycle", "end_cycle", "latency", "start_value", "end_value")

    def test_register_idempotent_and_conflicting(self):
        registry = SchemaRegistry()
        schema = TraceSchema("custom", ("a",))
        assert registry.register(schema) is schema
        registry.register(TraceSchema("custom", ("a",)))   # identical: ok
        with pytest.raises(TraceSchemaError):
            registry.register(TraceSchema("custom", ("b",)))

    def test_unknown_name_raises(self):
        with pytest.raises(TraceSchemaError):
            SchemaRegistry().get("nope")

    def test_ensure(self):
        registry = SchemaRegistry(builtins=False)
        assert len(registry) == 0
        registry.ensure("dyn", ("f",))
        registry.ensure("dyn", ("f",))
        assert registry.names() == ["dyn"]


class TestTraceHub:
    def test_emit_validates_and_records(self):
        hub = TraceHub()
        record = hub.emit("watch.event", 9, kernel="wp", cu=1, site="wp[1]",
                          address=64, tag=3, kind=0)
        assert record == TraceRecord("watch.event", 9, "wp", 1, "wp[1]",
                                     (64, 3, 0))
        assert hub.records == [record]
        assert hub.count() == 1 and hub.count("watch.event") == 1

    def test_emit_unknown_schema_raises(self):
        with pytest.raises(TraceSchemaError):
            TraceHub().emit("nope", 0)

    def test_emit_wrong_fields_raises(self):
        with pytest.raises(TraceSchemaError):
            TraceHub().emit("watch.event", 0, address=1, tag=2)   # missing kind

    def test_attached_sink_sees_records(self):
        hub = TraceHub()
        sink = hub.attach(MemorySink())
        hub.emit("run.span", 0, kernel="k", start=0, end=10)
        assert len(sink.records) == 1
        hub.detach(sink)
        hub.emit("run.span", 0, kernel="k", start=0, end=10)
        assert len(sink.records) == 1 and len(hub.records) == 2

    def test_keep_records_false(self):
        hub = TraceHub(keep_records=False)
        hub.emit("run.span", 0, kernel="k", start=0, end=1)
        with pytest.raises(TraceSchemaError):
            hub.records

    def test_closed_hub_rejects_emit(self):
        hub = TraceHub()
        hub.close()
        with pytest.raises(TraceSchemaError):
            hub.emit("run.span", 0, kernel="k", start=0, end=1)

    def test_emit_record_validates_arity(self):
        hub = TraceHub()
        with pytest.raises(TraceSchemaError):
            hub.emit_record(TraceRecord("run.span", 0, "k", 0, "k", (1,)))
        hub.emit_record(TraceRecord("run.span", 0, "k", 0, "k", (1, 2)))
        assert hub.count("run.span") == 1
