"""Tests for the SpMV kernel and the timeline analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.timeline import (
    Timeline,
    event_rate_timeline,
    latency_timeline,
    occupancy_timeline,
)
from repro.core.stall_monitor import LatencySample, StallMonitor
from repro.errors import KernelArgumentError, TraceDecodeError
from repro.kernels.spmv import (
    SpMVKernel,
    allocate_spmv_buffers,
    expected_spmv,
    random_csr,
)
from repro.pipeline.fabric import Fabric


class TestSpMV:
    def _run(self, fabric, rows=6, columns=32, nnz=4, monitor=None):
        allocate_spmv_buffers(fabric, rows, columns, nnz)
        kernel = SpMVKernel([nnz] * rows, stall_monitor=monitor)
        fabric.run_kernel(kernel, {"rows": rows})
        return fabric.memory.buffer("y").snapshot(), rows, nnz

    def test_result_correct(self, fabric):
        y, rows, nnz = self._run(fabric)
        assert np.array_equal(y, expected_spmv(fabric, rows, nnz))

    def test_instrumented_result_unperturbed(self, fabric):
        monitor = StallMonitor(fabric, sites=2, depth=256)
        y, rows, nnz = self._run(fabric, monitor=monitor)
        assert np.array_equal(y, expected_spmv(fabric, rows, nnz))

    def test_gather_latency_trace_collected(self, fabric):
        monitor = StallMonitor(fabric, sites=2, depth=256)
        _, rows, nnz = self._run(fabric, monitor=monitor)
        samples = monitor.latencies(0, 1)
        assert len(samples) == rows * nnz
        assert all(sample.latency > 0 for sample in samples)

    def test_irregular_rows_supported(self, fabric):
        lengths = [1, 3, 0, 2]
        nnz = sum(lengths)
        fabric.memory.allocate("row_ptr", 5)
        fabric.memory.allocate("col_idx", nnz).fill([0, 0, 1, 2, 1, 3])
        fabric.memory.allocate("values", nnz).fill([2, 1, 1, 1, 5, 5])
        fabric.memory.allocate("x", 4).fill([1, 10, 100, 1000])
        y = fabric.memory.allocate("y", 4)
        fabric.run_kernel(SpMVKernel(lengths), {"rows": 4})
        assert list(y.snapshot()) == [2, 111, 0, 5050]

    def test_negative_row_length_rejected(self):
        with pytest.raises(KernelArgumentError):
            SpMVKernel([2, -1])

    def test_random_csr_shape_and_validation(self):
        csr = random_csr(4, 16, 3)
        assert len(csr["col_idx"]) == 12
        assert csr["row_ptr"][-1] == 12
        assert (csr["col_idx"] < 16).all()
        with pytest.raises(KernelArgumentError):
            random_csr(2, 4, 5)


class TestTimeline:
    def _samples(self, spec):
        return [LatencySample(start_cycle=s, end_cycle=e,
                              start_value=0, end_value=0)
                for s, e in spec]

    def test_occupancy_counts_overlap(self):
        # Two ops fully covering one bin -> occupancy 2.0 there.
        timeline = occupancy_timeline(
            self._samples([(0, 64), (0, 64), (64, 128)]), bin_width=64)
        assert timeline.values[0] == pytest.approx(2.0)
        assert timeline.values[1] == pytest.approx(1.0)

    def test_partial_overlap_fractional(self):
        timeline = occupancy_timeline(self._samples([(0, 32)]), bin_width=64)
        assert timeline.values[0] == pytest.approx(0.5)

    def test_event_rate_binning(self):
        entries = [{"timestamp": t} for t in (0, 1, 2, 100)]
        timeline = event_rate_timeline(entries, bin_width=64)
        assert timeline.values == (3.0, 1.0)

    def test_latency_timeline_means(self):
        samples = self._samples([(0, 10), (0, 30), (64, 100)])
        timeline = latency_timeline(samples, bin_width=64)
        assert timeline.values[0] == pytest.approx(20.0)
        assert timeline.values[1] == pytest.approx(36.0)

    def test_sparkline_renders_per_bin(self):
        timeline = Timeline(start=0, bin_width=1, values=(0.0, 0.5, 1.0))
        spark = timeline.sparkline()
        assert len(spark) == 3
        assert spark[0] == " "
        assert spark[2] == "█"

    def test_empty_inputs_rejected(self):
        with pytest.raises(TraceDecodeError):
            occupancy_timeline([])
        with pytest.raises(TraceDecodeError):
            event_rate_timeline([])

    def test_end_to_end_from_monitor(self, fabric):
        monitor = StallMonitor(fabric, sites=2, depth=512)
        allocate_spmv_buffers(fabric, 8, 64, 4)
        fabric.run_kernel(SpMVKernel([4] * 8, stall_monitor=monitor),
                          {"rows": 8})
        samples = monitor.latencies(0, 1)
        timeline = occupancy_timeline(samples, bin_width=32)
        assert max(timeline.values) > 0
        assert "peak" in timeline.render("gather occupancy")
