"""Tests for the mini OpenCL host runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import HostAPIError
from repro.host import (
    CommandQueue,
    Context,
    Program,
    default_device,
    get_platforms,
)
from repro.host.event import EventStatus
from repro.kernels.vecadd import VecAddKernel
from repro.pipeline.kernel import AutorunKernel, SingleTaskKernel


class TestPlatformEnumeration:
    def test_three_devices(self):
        platforms = get_platforms()
        assert len(platforms) == 1
        assert len(platforms[0].devices) == 3

    def test_default_device_is_stratix_v(self):
        assert "Stratix V" in default_device().name


class TestContextAndBuffers:
    def test_create_and_lookup(self):
        context = Context()
        buffer = context.create_buffer("a", 8)
        assert context.buffer("a") is buffer
        assert len(buffer) == 8

    def test_duplicate_name_rejected(self):
        context = Context()
        context.create_buffer("a", 4)
        with pytest.raises(HostAPIError):
            context.create_buffer("a", 4)

    def test_unknown_buffer_rejected(self):
        with pytest.raises(HostAPIError):
            Context().buffer("ghost")

    def test_write_read_roundtrip(self):
        context = Context()
        buffer = context.create_buffer("a", 4)
        buffer.write([1, 2, 3, 4])
        assert list(buffer.read()) == [1, 2, 3, 4]

    def test_address_of_usable_for_watchpoints(self):
        context = Context()
        buffer = context.create_buffer("a", 4)
        assert buffer.address_of(2) == buffer.base_address + 16


class TestCommandQueue:
    def _vecadd_context(self, n=8):
        context = Context()
        context.create_buffer("a", n).write(np.arange(n))
        context.create_buffer("b", n).write(np.arange(n))
        context.create_buffer("c", n)
        return context

    def test_enqueue_and_finish(self):
        context = self._vecadd_context()
        queue = CommandQueue(context)
        event = queue.enqueue_kernel(VecAddKernel(), {"n": 8})
        queue.finish()
        assert event.is_complete
        assert list(context.buffer("c").read()) == [2 * i for i in range(8)]

    def test_in_order_execution(self):
        """The second kernel must not start before the first finishes."""
        context = Context()
        context.create_buffer("data", 1)
        order = []
        class Stamp(SingleTaskKernel):
            def __init__(self, tag):
                super().__init__(name=f"stamp_{tag}")
                self.tag = tag
            def iteration_space(self, args):
                return [0]
            def body(self, ctx):
                order.append((self.tag, "start", ctx.now))
                yield ctx.compute(50)
                order.append((self.tag, "end", ctx.now))
        queue = CommandQueue(context)
        queue.enqueue_kernel(Stamp("first"), {})
        queue.enqueue_kernel(Stamp("second"), {})
        queue.finish()
        assert order[0][:2] == ("first", "start")
        assert order[1][:2] == ("first", "end")
        first_end = order[1][2]
        assert order[2] == ("second", "start", first_end)

    def test_autorun_enqueue_rejected(self):
        context = Context()
        class Auto(AutorunKernel):
            def body(self, ctx):
                while True:
                    yield ctx.cycle()
        queue = CommandQueue(context)
        with pytest.raises(HostAPIError):
            queue.enqueue_kernel(Auto(name="auto"))

    def test_profiling_info_available_after_finish(self):
        context = self._vecadd_context()
        queue = CommandQueue(context)
        event = queue.enqueue_kernel(VecAddKernel(), {"n": 8})
        with pytest.raises(HostAPIError):
            event.profiling_info()  # not complete yet
        queue.finish()
        info = event.profiling_info()
        assert info["duration"] > 0
        assert info["end"] >= info["start"] >= info["queued"]

    def test_events_listed_in_order(self):
        context = self._vecadd_context()
        queue = CommandQueue(context)
        queue.enqueue_kernel(VecAddKernel(), {"n": 8})
        queue.finish()
        events = queue.events()
        assert len(events) == 1
        assert events[0].status == EventStatus.COMPLETE


class TestProgram:
    def test_kernel_lookup(self):
        context = Context()
        kernel = VecAddKernel()
        program = Program(context, [kernel])
        assert program.kernel("vecadd") is kernel
        with pytest.raises(HostAPIError):
            program.kernel("missing")

    def test_empty_program_rejected(self):
        with pytest.raises(HostAPIError):
            Program(Context(), [])

    def test_duplicate_kernel_names_rejected(self):
        with pytest.raises(HostAPIError):
            Program(Context(), [VecAddKernel(), VecAddKernel()])

    def test_synthesis_report_covers_declared_channels(self):
        context = Context()
        context.fabric.channels.declare("probe", depth=1024, width_bits=64)
        program = Program(context, [VecAddKernel()])
        report = program.synthesis_report()
        assert report.channels.memory_bits == 1024 * 64
        assert report.fmax_mhz > 0


class TestContextCompile:
    def test_compile_and_enqueue_from_source(self):
        context = Context()
        program = context.compile("""
            __kernel void triple(__global int* data, int n) {
                for (int i = 0; i < n; i++) {
                    data[i] = data[i] * 3;
                }
            }
        """)
        buffer = context.create_buffer("data", 5)
        buffer.write([1, 2, 3, 4, 5])
        queue = CommandQueue(context)
        queue.enqueue_kernel(program.kernel("triple"), {"data": "data", "n": 5})
        queue.finish()
        assert list(buffer.read()) == [3, 6, 9, 12, 15]

    def test_compile_links_context_hdl_library(self):
        context = Context()
        context.hdl_library.add_get_time()
        program = context.compile("""
            __kernel void timed(__global int* out) {
                out[0] = get_time(0);
            }
        """)
        context.create_buffer("out", 1)
        queue = CommandQueue(context)
        context.fabric.advance(25)
        queue.enqueue_kernel(program.kernel("timed"), {"out": "out"})
        queue.finish()
        assert context.buffer("out").read()[0] >= 25
