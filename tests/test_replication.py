"""Tests for multi-compute-unit kernel replication."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.vecadd import VecAddKernel
from repro.memory.global_memory import GlobalMemoryConfig
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import NDRangeKernel


class _ReplicatedVecAdd(VecAddKernel):
    """Vecadd with II=4: each CU issues one work-item per 4 cycles, so a
    single unit is issue-bound and replication has something to buy —
    the scenario num_compute_units exists for."""

    def __init__(self, compute_units: int):
        from repro.pipeline.kernel import PipelineConfig
        NDRangeKernel.__init__(self, name="vecadd_multi",
                               num_compute_units=compute_units,
                               pipeline=PipelineConfig(ii=4))


def _run(compute_units: int, n: int = 64,
         memory_config=None) -> tuple:
    fabric = Fabric(memory_config=memory_config, keep_lsu_samples=False)
    fabric.memory.allocate("a", n).fill(np.arange(n))
    fabric.memory.allocate("b", n).fill(np.arange(n) * 2)
    c = fabric.memory.allocate("c", n)
    kernel = _ReplicatedVecAdd(compute_units)
    engines = fabric.run_replicated(kernel, {"n": n})
    total = max(engine.stats.finish_cycle for engine in engines)
    return c.snapshot(), total, engines


class TestCorrectness:
    @pytest.mark.parametrize("compute_units", [1, 2, 4])
    def test_results_identical_across_replication(self, compute_units):
        result, _, _ = _run(compute_units)
        assert np.array_equal(result, np.arange(64) * 3)

    def test_space_partitioned_round_robin(self):
        _, _, engines = _run(4, n=64)
        per_unit = [engine.stats.iterations_retired for engine in engines]
        assert per_unit == [16, 16, 16, 16]

    def test_uneven_split(self):
        _, _, engines = _run(4, n=10)
        per_unit = sorted(engine.stats.iterations_retired
                          for engine in engines)
        assert per_unit == [2, 2, 3, 3]
        assert sum(per_unit) == 10

    def test_compute_ids_distinct(self):
        _, _, engines = _run(3)
        assert sorted(engine.instance.compute_id
                      for engine in engines) == [0, 1, 2]


class TestScaling:
    def test_replication_improves_throughput(self):
        """With a parallel memory system (fine row interleave spreads the
        three buffers across all banks), 4 CUs beat 1 CU clearly."""
        config = GlobalMemoryConfig(banks=16, row_bytes=64,
                                    max_outstanding=256)
        _, single, _ = _run(1, n=128, memory_config=config)
        _, quad, _ = _run(4, n=128, memory_config=config)
        assert quad < single

    def test_bandwidth_bound_limits_scaling(self):
        """With a single bank, replication cannot buy the same factor."""
        parallel = GlobalMemoryConfig(banks=16, row_bytes=64,
                                      max_outstanding=256)
        serial = GlobalMemoryConfig(banks=1, max_outstanding=256)
        _, single_p, _ = _run(1, n=128, memory_config=parallel)
        _, quad_p, _ = _run(4, n=128, memory_config=parallel)
        _, quad_s, _ = _run(4, n=128, memory_config=serial)
        # Replication helps when issue-bound (near the ideal 2x+ here)...
        assert single_p / quad_p > 1.8
        # ...but cannot buy back a saturated memory system: the one-bank
        # quad build stays several times slower than the parallel one.
        assert quad_s > 4 * quad_p

    def test_synthesis_charges_replication(self):
        from repro.synthesis import Design, synthesize
        single = synthesize(Design("s", kernels=[_ReplicatedVecAdd(1)]))
        quad = synthesize(Design("q", kernels=[_ReplicatedVecAdd(4)]))
        assert (quad.per_kernel["vecadd_multi"].alms
                == pytest.approx(4 * single.per_kernel["vecadd_multi"].alms))
