"""Tests for the scheduler's hot-path machinery: pooled ticks, the O(1)
interrupt detach, and ``run(until=event)`` semantics."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.conditions import AnyOf
from repro.sim.core import Interrupt, PRIORITY_URGENT, Simulator


class TestTickPooling:
    def test_tick_behaves_like_timeout_one(self, sim):
        times = []

        def stepper():
            for _ in range(5):
                yield sim.tick()
            times.append(sim.now)
        sim.process(stepper())
        sim.run()
        assert times == [5]

    def test_tick_objects_are_recycled(self, sim):
        seen = set()

        def stepper():
            for _ in range(100):
                tick = sim.tick()
                seen.add(id(tick))
                yield tick
        sim.process(stepper())
        sim.run()
        # The pool recycles aggressively: far fewer objects than yields.
        assert len(seen) < 100

    def test_recycled_tick_state_is_reset(self, sim):
        values = []

        def stepper():
            for _ in range(10):
                values.append((yield sim.tick()))
        sim.process(stepper())
        sim.run()
        assert values == [None] * 10

    def test_tick_priority_respected(self, sim):
        order = []

        def urgent():
            yield sim.tick(PRIORITY_URGENT)
            order.append("urgent")

        def normal():
            yield sim.tick()
            order.append("normal")
        sim.process(normal())
        sim.process(urgent())
        sim.run()
        assert order == ["urgent", "normal"]

    def test_two_processes_never_share_a_live_tick(self, sim):
        ticks = []

        def stepper(label):
            for _ in range(50):
                tick = sim.tick()
                ticks.append((label, tick))
                yield tick
        sim.process(stepper("a"))
        sim.process(stepper("b"))
        sim.run()
        # Within one cycle the two processes' ticks are distinct objects.
        by_cycle = {}
        for index, (label, tick) in enumerate(ticks):
            by_cycle.setdefault(index // 2, []).append(tick)


class TestInterruptDetach:
    def test_interrupt_does_not_scan_wide_anyof(self, sim):
        """Interrupting a process waiting on a wide AnyOf must not corrupt
        the other waiters' callbacks."""
        events = [sim.event() for _ in range(50)]
        other_done = []

        def waiter():
            try:
                yield AnyOf(sim, events)
            except Interrupt:
                yield sim.timeout(1)
        process = sim.process(waiter())

        def bystander():
            yield events[7]
            other_done.append(sim.now)
        sim.process(bystander())

        def killer():
            yield sim.timeout(5)
            process.interrupt()
            yield sim.timeout(5)
            events[7].succeed()
        sim.process(killer())
        sim.run()
        assert other_done == [10]

    def test_rewaiting_the_same_event_after_interrupt(self, sim):
        """A process that re-yields the event it was detached from must be
        woken by it normally (the stale marker applies only once)."""
        target = sim.event()
        log = []

        def waiter():
            try:
                yield target
            except Interrupt:
                value = yield target
                log.append((sim.now, value))
        process = sim.process(waiter())

        def driver():
            yield sim.timeout(3)
            process.interrupt()
            yield sim.timeout(4)
            target.succeed("late")
        sim.process(driver())
        sim.run()
        assert log == [(7, "late")]

    def test_double_interrupt_delivers_both(self, sim):
        causes = []

        def waiter():
            try:
                yield sim.timeout(100)
            except Interrupt as first:
                causes.append(first.cause)
                try:
                    yield sim.timeout(100)
                except Interrupt as second:
                    causes.append(second.cause)
        process = sim.process(waiter())

        def killer():
            yield sim.timeout(2)
            process.interrupt("one")
            yield sim.timeout(2)
            process.interrupt("two")
        sim.process(killer())
        sim.run()
        assert causes == ["one", "two"]


class TestRunUntilEvent:
    def test_returns_value_when_event_triggers(self, sim):
        def producer():
            yield sim.timeout(9)
            return "done"
        process = sim.process(producer())
        assert sim.run(until=process) == "done"
        assert sim.now == 9

    def test_raises_when_queue_drains_first(self, sim):
        never = sim.event()
        sim.timeout(5)
        with pytest.raises(SimulationError, match="ran out of events"):
            sim.run(until=never)

    def test_until_past_time_rejected(self, sim):
        sim.timeout(10)
        sim.run()
        with pytest.raises(SimulationError, match="in the past"):
            sim.run(until=3)

    def test_until_time_advances_clock_to_stop(self, sim):
        sim.timeout(3)
        sim.run(until=50)
        assert sim.now == 50
