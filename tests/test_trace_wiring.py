"""Tests that every instrumentation producer publishes into the hub.

One test per source named in the tracing issue: ibuffer drains (via the
host controller), stall-monitor latencies (typed), watchpoint events,
vendor-profiler counters, host-queue command lifecycles, and emulator
run summaries.
"""

from __future__ import annotations

import numpy as np

from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import SingleTaskKernel
from repro.trace import TraceHub, TraceQuery, ColumnarStore


def _hubbed_fabric():
    hub = TraceHub()
    return Fabric(trace=hub), hub


class TestFabricWiring:
    def test_fabric_default_has_no_trace(self):
        assert Fabric().trace is None

    def test_enable_tracing_installs_hub(self):
        fabric = Fabric()
        hub = fabric.enable_tracing()
        assert fabric.trace is hub
        assert isinstance(hub, TraceHub)

    def test_enable_tracing_accepts_existing_hub(self):
        fabric = Fabric()
        hub = TraceHub()
        assert fabric.enable_tracing(hub) is hub
        assert fabric.trace is hub


class TestProducers:
    def test_stall_monitor_publishes_latency_samples(self):
        from repro.core.stall_monitor import StallMonitor
        from repro.kernels.matmul import MatMulKernel, allocate_matmul_buffers

        fabric, hub = _hubbed_fabric()
        monitor = StallMonitor(fabric, sites=2, depth=256)
        allocate_matmul_buffers(fabric, 3, 4, 3)
        fabric.run_kernel(MatMulKernel(stall_monitor=monitor),
                          {"rows_a": 3, "col_a": 4, "col_b": 3})
        samples = monitor.latencies(0, 1)
        typed = [r for r in hub.records if r.schema == "latency.sample"]
        assert len(typed) == len(samples) > 0
        assert typed[0].values[2] == samples[0].latency

    def test_host_controller_publishes_raw_drains(self):
        from repro.core.stall_monitor import StallMonitor
        from repro.kernels.matmul import MatMulKernel, allocate_matmul_buffers

        fabric, hub = _hubbed_fabric()
        monitor = StallMonitor(fabric, sites=2, depth=256)
        allocate_matmul_buffers(fabric, 3, 4, 3)
        fabric.run_kernel(MatMulKernel(stall_monitor=monitor),
                          {"rows_a": 3, "col_a": 4, "col_b": 3})
        monitor.latencies(0, 1)
        raw = [r for r in hub.records if r.schema.startswith("ibuffer.")]
        assert raw, "HostController.read_trace must publish raw drains"

    def test_watchpoint_publishes_typed_events(self):
        from repro.core.watchpoint import SmartWatchpoint

        fabric, hub = _hubbed_fabric()
        watchpoint = SmartWatchpoint(fabric, units=1, depth=32)
        fabric.memory.allocate("data", 4)
        values = [5, 6, 7]

        class Writer(SingleTaskKernel):
            """Writes monitored values to data[0]."""

            def iteration_space(self, args):
                return range(len(values))

            def body(self, ctx):
                data = ctx._instance.fabric.memory.buffer("data")
                if ctx.iteration == 0:
                    watchpoint.add_watch(ctx, 0, data.address_of(0))
                yield ctx.store("data", 0, values[ctx.iteration])
                watchpoint.monitor_address(ctx, 0, data.address_of(0),
                                           values[ctx.iteration])

        fabric.run_kernel(Writer(name="writer"), {})
        watchpoint.read_unit(0)
        events = [r for r in hub.records if r.schema == "watch.event"]
        assert [r.values[1] for r in events] == values   # tags

    def test_vendor_profiler_publishes_counters(self):
        from repro.core.vendor_profiler import VendorProfiler
        from repro.kernels.matmul import MatMulKernel, allocate_matmul_buffers

        fabric, hub = _hubbed_fabric()
        profiler = VendorProfiler(fabric)
        allocate_matmul_buffers(fabric, 3, 4, 3)
        engine = fabric.run_kernel(MatMulKernel(),
                                   {"rows_a": 3, "col_a": 4, "col_b": 3})
        report = profiler.report(engine)
        counters = [r for r in hub.records if r.schema == "counter.lsu"]
        assert {r.site for r in counters} == {c.site for c in report.lsus}

    def test_host_queue_publishes_command_lifecycles(self):
        from repro.host import CommandQueue, Context
        from repro.kernels.vecadd import VecAddKernel

        context = Context()
        hub = context.fabric.enable_tracing()
        n = 8
        context.create_buffer("a", n).write(np.arange(n))
        context.create_buffer("b", n).write(np.arange(n))
        context.create_buffer("c", n)
        queue = CommandQueue(context)
        queue.enqueue_kernel(VecAddKernel(), {"n": n})
        queue.finish()
        commands = [r for r in hub.records if r.schema == "host.command"]
        assert len(commands) == 1
        queued, start, end = commands[0].values
        assert queued <= start <= end

    def test_emulator_publishes_run_summary(self):
        from repro.host.emulation import Emulator
        from repro.kernels.vecadd import VecAddKernel

        fabric, hub = _hubbed_fabric()
        n = 8
        fabric.memory.allocate("a", n).fill(np.arange(n))
        fabric.memory.allocate("b", n).fill(np.arange(n))
        fabric.memory.allocate("c", n)
        Emulator(fabric).run_kernel(VecAddKernel(), {"n": n})
        runs = [r for r in hub.records if r.schema == "emu.kernel"]
        assert len(runs) == 1
        assert runs[0].kernel == "vecadd"

    def test_hub_records_store_cleanly(self):
        from repro.experiments import sec52

        hub = TraceHub()
        sec52.run(trace=hub)
        store = ColumnarStore.from_records(hub.records, hub.registry)
        assert store.total_rows() == len(hub.records) > 0
        assert TraceQuery(store).schema("run.span").count() == 1
