"""Edge-case tests for the simulation core: interrupts under blocking
operations, condition failures, and scheduler corner cases."""

from __future__ import annotations

import pytest

from repro.channels.channel import Channel
from repro.errors import ProcessError, SimulationError
from repro.sim.conditions import AllOf, AnyOf
from repro.sim.core import Interrupt, PRIORITY_URGENT, Simulator
from repro.sim.resources import Store


class TestInterruptWhileBlocked:
    def test_interrupt_during_store_get(self, sim):
        store = Store(sim, capacity=2)
        outcome = []

        def consumer():
            try:
                yield store.get()
                outcome.append("got")
            except Interrupt:
                outcome.append("interrupted")
        process = sim.process(consumer())

        def killer():
            yield sim.timeout(5)
            process.interrupt()
        sim.process(killer())
        sim.run()
        assert outcome == ["interrupted"]

    def test_interrupt_during_blocking_channel_read(self, sim):
        channel = Channel(sim, "c", depth=2)
        outcome = []

        def consumer():
            try:
                value = yield from channel.read()
                outcome.append(value)
            except Interrupt:
                outcome.append("stopped")
        process = sim.process(consumer())

        def killer():
            yield sim.timeout(3)
            process.interrupt("teardown")
        sim.process(killer())
        sim.run()
        assert outcome == ["stopped"]

    def test_interrupted_process_can_finish_cleanly(self, sim):
        log = []

        def body():
            try:
                yield sim.timeout(100)
            except Interrupt:
                pass
            yield sim.timeout(2)       # continue after the interrupt
            log.append(sim.now)
        process = sim.process(body())

        def killer():
            yield sim.timeout(10)
            process.interrupt()
        sim.process(killer())
        sim.run()
        assert log == [12]


class TestConditionsEdgeCases:
    def test_allof_with_already_processed_events(self, sim):
        done = sim.timeout(0)
        sim.run()
        pending = sim.timeout(4)
        condition = AllOf(sim, [done, pending])
        sim.run()
        assert condition.triggered
        assert len(condition.value) == 2

    def test_anyof_failure_before_success(self, sim):
        bad = sim.event()
        slow = sim.timeout(50)
        condition = AnyOf(sim, [bad, slow])
        caught = []

        def waiter():
            try:
                yield condition
            except RuntimeError as exc:
                caught.append(str(exc))
        sim.process(waiter())

        def failer():
            yield sim.timeout(1)
            bad.fail(RuntimeError("early failure"))
        sim.process(failer())
        sim.run()
        assert caught == ["early failure"]

    def test_nested_conditions(self, sim):
        a, b, c = sim.timeout(1), sim.timeout(2), sim.timeout(30)
        inner = AllOf(sim, [a, b])
        outer = AnyOf(sim, [inner, c])
        fired_at = []

        def waiter():
            yield outer
            fired_at.append(sim.now)
        sim.process(waiter())
        sim.run()
        assert fired_at == [2]


class TestSchedulerCornerCases:
    def test_same_cycle_urgent_event_in_callback(self, sim):
        """An urgent event scheduled from a normal callback still runs in
        the same cycle (after all already-queued work)."""
        order = []

        def normal():
            yield sim.timeout(5)
            order.append("normal")
            sim.timeout(0, priority=PRIORITY_URGENT).add_callback(
                lambda e: order.append("urgent-after"))
        sim.process(normal())
        sim.run()
        assert order == ["normal", "urgent-after"]
        assert sim.now == 5

    def test_many_processes_fifo_fairness(self, sim):
        order = []
        for index in range(50):
            def body(i=index):
                yield sim.timeout(1)
                order.append(i)
            sim.process(body())
        sim.run()
        assert order == list(range(50))

    def test_event_failure_without_waiter_is_loud(self, sim):
        def body():
            yield sim.timeout(1)
            raise ValueError("unobserved crash")
        sim.process(body())
        with pytest.raises(ProcessError, match="unobserved crash"):
            sim.run()

    def test_run_until_event_with_empty_queue_raises(self, sim):
        never = sim.event()
        with pytest.raises(SimulationError, match="ran out of events"):
            sim.run(until=never)
