"""Tests for the timestamp primitive patterns (§3.1)."""

from __future__ import annotations

import pytest

from repro.core.timestamp import (
    HDLTimestampService,
    PersistentTimestampService,
    TimerServiceKernel,
)
from repro.errors import KernelError
from repro.hdl.library import HDLLibrary
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import SingleTaskKernel


class ReadOnce(SingleTaskKernel):
    """Reads one timestamp after a configurable delay."""

    def __init__(self, reader, delay, **kw):
        super().__init__(**kw)
        self.reader = reader
        self.delay = delay
        self.values = []

    def iteration_space(self, args):
        return [0]

    def body(self, ctx):
        yield ctx.compute(self.delay)
        value = yield self.reader(ctx)
        self.values.append(value)


class TestPersistentPattern:
    def test_counter_tracks_cycles(self, fabric):
        service = PersistentTimestampService(fabric, sites=1)
        kernel = ReadOnce(lambda ctx: service.read_op(ctx, 0), delay=25,
                          name="probe")
        fabric.run_kernel(kernel, {})
        # Counter started at cycle 0 and increments by 1/cycle; the read
        # at cycle ~25 must be within a cycle of that.
        assert abs(kernel.values[0] - 26) <= 1

    def test_one_kernel_per_channel(self, fabric):
        service = PersistentTimestampService(fabric, sites=3)
        assert len(service.kernels) == 3
        assert len(service.channels) == 3
        names = {kernel.name for kernel in service.kernels}
        assert len(names) == 3

    def test_zero_sites_rejected(self, fabric):
        with pytest.raises(KernelError):
            PersistentTimestampService(fabric, sites=0)

    def test_skew_length_mismatch_rejected(self, fabric):
        with pytest.raises(KernelError):
            PersistentTimestampService(fabric, sites=2, launch_skews=[1])

    def test_launch_skew_offsets_counter(self, fabric):
        service = PersistentTimestampService(fabric, sites=1,
                                             launch_skews=[10])
        kernel = ReadOnce(lambda ctx: service.read_op(ctx, 0), delay=30,
                          name="probe")
        fabric.run_kernel(kernel, {})
        # The counter started 10 cycles late: value ~ (30 - 10).
        assert abs(kernel.values[0] - 21) <= 1

    def test_nonblocking_read_helper(self, fabric):
        service = PersistentTimestampService(fabric, sites=1)
        got = []
        class NB(SingleTaskKernel):
            def iteration_space(self, args):
                return [0]
            def body(self, ctx):
                yield ctx.compute(5)
                got.append(service.read(ctx, 0))
        fabric.run_kernel(NB(name="nb"), {})
        assert abs(got[0] - 6) <= 1

    def test_compiled_depth_produces_stale_values(self, fabric):
        service = PersistentTimestampService(fabric, sites=1,
                                             compiled_depth=8)
        kernel = ReadOnce(lambda ctx: service.read_op(ctx, 0), delay=50,
                          name="probe")
        fabric.run_kernel(kernel, {})
        # A FIFO keeps the oldest counter values: the read is very stale.
        assert kernel.values[0] <= 9


class TestHDLPattern:
    def test_get_time_returns_cycle(self, fabric):
        service = HDLTimestampService(fabric)
        kernel = ReadOnce(lambda ctx: service.get_time(ctx, 0), delay=17,
                          name="probe")
        fabric.run_kernel(kernel, {})
        assert kernel.values[0] == 17

    def test_start_offset_models_reset_time(self, fabric):
        service = HDLTimestampService(fabric, start_offset=1000)
        kernel = ReadOnce(lambda ctx: service.get_time(ctx, 0), delay=5,
                          name="probe")
        fabric.run_kernel(kernel, {})
        assert kernel.values[0] == 1005

    def test_emulation_mode_returns_command_plus_one(self, fabric):
        """Listing 3: the OpenCL stub used under emulation."""
        library = HDLLibrary(fabric.sim)
        service = HDLTimestampService(fabric, library, mode="emulation")
        kernel = ReadOnce(lambda ctx: service.get_time(ctx, 41), delay=9,
                          name="probe")
        fabric.run_kernel(kernel, {})
        assert kernel.values[0] == 42

    def test_registered_in_library(self, fabric):
        library = HDLLibrary(fabric.sim)
        HDLTimestampService(fabric, library, name="ts")
        assert "ts" in library


class TestPatternAgreement:
    def test_both_patterns_measure_same_interval(self, fabric):
        """A fixed 40-cycle event must measure as 40 under either pattern."""
        persistent = PersistentTimestampService(fabric, sites=2)
        hdl = HDLTimestampService(fabric)
        results = {}

        class Both(SingleTaskKernel):
            def iteration_space(self, args):
                return [0]
            def body(self, ctx):
                p0 = yield persistent.read_op(ctx, 0)
                h0 = yield hdl.get_time(ctx, 0)
                yield ctx.compute(40)
                p1 = yield persistent.read_op(ctx, 1)
                h1 = yield hdl.get_time(ctx, 0)
                results["persistent"] = p1 - p0
                results["hdl"] = h1 - h0
        fabric.run_kernel(Both(name="both"), {})
        assert results["hdl"] == 40
        assert results["persistent"] == results["hdl"]
