"""Property-based tests for the global-memory controller."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.memory.global_memory import GlobalMemory, GlobalMemoryConfig
from repro.sim.core import Simulator

_configs = st.builds(
    GlobalMemoryConfig,
    pipe_latency=st.integers(0, 80),
    banks=st.sampled_from([1, 2, 4, 8, 16]),
    bank_busy_cycles=st.integers(0, 8),
    row_bytes=st.sampled_from([64, 256, 1024, 4096]),
    row_hit_cycles=st.integers(0, 10),
    row_miss_cycles=st.integers(10, 50),   # hit <= miss enforced by config
)
_access_lists = st.lists(st.integers(min_value=0, max_value=511),
                         min_size=1, max_size=40)


def _measure(config, indices):
    sim = Simulator()
    memory = GlobalMemory(sim, config)
    memory.allocate("data", 512).fill(range(512))
    latencies = []

    def body():
        for index in indices:
            start = sim.now
            value = yield memory.load("data", index)
            latencies.append((sim.now - start, value))
    sim.process(body())
    sim.run()
    return memory, latencies


class TestLatencyBounds:
    @given(config=_configs, indices=_access_lists)
    @settings(max_examples=50, deadline=None)
    def test_sequential_latency_within_model_bounds(self, config, indices):
        """Every sequential access costs at least pipe+hit+busy and at most
        pipe+miss+busy (no queuing when accesses are serialized)."""
        _, latencies = _measure(config, indices)
        low = (config.pipe_latency + config.row_hit_cycles
               + config.bank_busy_cycles)
        high = (config.pipe_latency + config.row_miss_cycles
                + config.bank_busy_cycles)
        for latency, _ in latencies:
            assert low <= latency <= high

    @given(config=_configs, indices=_access_lists)
    @settings(max_examples=50, deadline=None)
    def test_values_always_correct(self, config, indices):
        _, latencies = _measure(config, indices)
        assert [value for _, value in latencies] == indices

    @given(config=_configs, indices=_access_lists)
    @settings(max_examples=50, deadline=None)
    def test_hit_miss_accounting_complete(self, config, indices):
        memory, _ = _measure(config, indices)
        assert (memory.stats.row_hits + memory.stats.row_misses
                == len(indices))
        assert memory.stats.loads == len(indices)

    @given(config=_configs)
    @settings(max_examples=50, deadline=None)
    def test_repeated_same_address_hits_after_first(self, config):
        memory, _ = _measure(config, [7, 7, 7, 7])
        assert memory.stats.row_misses == 1
        assert memory.stats.row_hits == 3


class TestTrafficAccounting:
    @given(indices=_access_lists)
    @settings(max_examples=30, deadline=None)
    def test_bytes_read_matches_access_count(self, indices):
        memory, _ = _measure(GlobalMemoryConfig(), indices)
        itemsize = memory.buffer("data").itemsize
        assert memory.stats.bytes_read == len(indices) * itemsize
        assert memory.traffic["data"].loads == len(indices)

    @given(count=st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_store_commit_count_balances(self, count):
        sim = Simulator()
        memory = GlobalMemory(sim)
        memory.allocate("data", 64)

        def body():
            for index in range(count):
                yield memory.store("data", index % 64, index)
            yield memory.drained()
        sim.process(body())
        sim.run()
        assert memory.pending_commits == 0
        assert memory.stats.stores == count
