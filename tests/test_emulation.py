"""Tests for the functional emulator (the aocl -march=emulator flow)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.order import classify_order, order_records
from repro.core.sequence import SequenceService
from repro.core.timestamp import HDLTimestampService, PersistentTimestampService
from repro.errors import HostAPIError
from repro.host.emulation import Emulator
from repro.kernels.dot_product import DotProductKernel
from repro.kernels.matmul import MatMulKernel, allocate_matmul_buffers, expected_matmul
from repro.kernels.matvec import (
    MatVecNDRange,
    MatVecSingleTask,
    allocate_matvec_buffers,
    expected_matvec,
)
from repro.kernels.vecadd import VecAddKernel
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import AutorunKernel


class TestFunctionalEquivalence:
    def test_vecadd_matches_hardware_sim(self):
        results = {}
        for flow in ("emulation", "hardware"):
            fabric = Fabric()
            n = 16
            fabric.memory.allocate("a", n).fill(np.arange(n))
            fabric.memory.allocate("b", n).fill(np.arange(n) * 3)
            fabric.memory.allocate("c", n)
            if flow == "emulation":
                Emulator(fabric).run_kernel(VecAddKernel(), {"n": n})
            else:
                fabric.run_kernel(VecAddKernel(), {"n": n})
            results[flow] = fabric.memory.buffer("c").snapshot()
        assert np.array_equal(results["emulation"], results["hardware"])

    def test_matmul_correct_under_emulation(self):
        fabric = Fabric()
        allocate_matmul_buffers(fabric, 3, 4, 3)
        stats = Emulator(fabric).run_kernel(
            MatMulKernel(), {"rows_a": 3, "col_a": 4, "col_b": 3})
        result = fabric.memory.buffer("data_c").snapshot().reshape(3, 3)
        assert np.array_equal(result, expected_matmul(3, 4, 3))
        assert stats.iterations == 3 * 4 * 3

    def test_autorun_cannot_be_run_directly(self):
        fabric = Fabric()
        class Auto(AutorunKernel):
            def body(self, ctx):
                while True:
                    yield ctx.cycle()
        with pytest.raises(HostAPIError):
            Emulator(fabric).run_kernel(Auto(name="auto"))


class TestEmulationStubs:
    def test_get_time_stub_returns_command_plus_one(self):
        """Listing 3: emulation uses the OpenCL definition."""
        fabric = Fabric()
        hdl = HDLTimestampService(fabric)
        kernel = DotProductKernel(timestamps="hdl", hdl=hdl)
        n = 8
        fabric.memory.allocate("x", n).fill(np.arange(n))
        fabric.memory.allocate("y", n).fill(np.ones(n, dtype=np.int64))
        fabric.memory.allocate("z", 1)
        Emulator(fabric).run_kernel(kernel, {"n": n})
        # Result correct; "timestamps" are the stub's command+1 values.
        assert fabric.memory.buffer("z").read(0) == np.arange(n).sum()
        start, end = kernel.measurements[0]
        assert start == 1                     # get_time(0) -> 1
        assert end == np.arange(n).sum() + 1  # get_time(sum) -> sum+1

    def test_sequence_service_emulated_cooperatively(self):
        fabric = Fabric()
        seq = SequenceService(fabric)
        ts = PersistentTimestampService(fabric, sites=1)
        buffers = allocate_matvec_buffers(fabric, 3, 4, probe_i=2)
        Emulator(fabric).run_kernel(MatVecSingleTask(seq, ts, probe_i=2),
                                    {"N": 3, "num": 4})
        info2 = buffers["info2"].snapshot()
        # Sequence slots 1..6 all written (gap-free counter emulation).
        assert [int(info2[s]) for s in range(1, 7)] == [0, 0, 1, 1, 2, 2]


class TestEmulationDivergence:
    """The paper's motivation, §1: emulation looks sequential; hardware
    does not. Figure 2(b)'s interleaving is invisible to the emulator."""

    def _order(self, flow):
        fabric = Fabric()
        seq = SequenceService(fabric)
        ts = PersistentTimestampService(fabric, sites=1)
        n, num, probe = 4, 6, 3
        buffers = allocate_matvec_buffers(fabric, n, num, probe_i=probe)
        kernel = MatVecNDRange(seq, ts, probe_i=probe)
        if flow == "emulation":
            Emulator(fabric).run_kernel(kernel, {"N": n, "num": num})
        else:
            fabric.run_kernel(kernel, {"N": n, "num": num})
        records = order_records(buffers["info1"].snapshot(),
                                buffers["info2"].snapshot(),
                                buffers["info3"].snapshot(),
                                count=n * probe)
        return classify_order(records), buffers["z"].snapshot()

    def test_ndrange_emulates_sequentially_but_runs_interleaved(self):
        emu_order, emu_z = self._order("emulation")
        hw_order, hw_z = self._order("hardware")
        assert emu_order == "program-order"     # the emulator's lie
        assert hw_order == "interleaved"        # what hardware actually does
        assert np.array_equal(emu_z, hw_z)      # but results agree

    def test_depth_ignored_warning(self):
        fabric = Fabric()
        channel = fabric.channels.declare("d0", depth=0)
        emulator = Emulator(fabric)
        emulator._channel(channel)
        assert any("depth ignored" in warning
                   for warning in emulator.stats.warnings)

    def test_blocking_read_without_producer_reports_deadlock(self):
        fabric = Fabric()
        channel = fabric.channels.declare("never", depth=4)
        from repro.pipeline.kernel import SingleTaskKernel
        class Blocked(SingleTaskKernel):
            def iteration_space(self, args):
                return [0]
            def body(self, ctx):
                yield ctx.read_channel(channel)
        with pytest.raises(HostAPIError, match="deadlock"):
            Emulator(fabric).run_kernel(Blocked(name="blocked"), {})


class TestEmulatingCompiledKernels:
    def test_compiled_kernel_runs_under_emulator(self):
        """Frontend-compiled kernels emulate like native ones (same ops)."""
        from repro.frontend import compile_source
        fabric = Fabric()
        program = compile_source(fabric, """
            __kernel void doubler(__global int* data, int n) {
                for (int i = 0; i < n; i++) { data[i] = data[i] * 2; }
            }
        """)
        fabric.memory.allocate("data", 4).fill([1, 2, 3, 4])
        Emulator(fabric).run_kernel(program.kernel("doubler"),
                                    {"data": "data", "n": 4})
        assert list(fabric.memory.buffer("data").snapshot()) == [2, 4, 6, 8]

    def test_compiled_autorun_channels_fall_back_to_fifo(self):
        """Compiled autorun services have no emulation model: the emulator
        warns and treats their channels as plain FIFOs."""
        from repro.frontend import compile_source
        fabric = Fabric()
        compile_source(fabric, """
            channel int c __attribute__((depth(0)));
            __attribute__((autorun))
            __kernel void srv(void) {
                int count = 0;
                while (1) { count++; write_channel_nb_altera(c, count); }
            }
        """)
        emulator = Emulator(fabric)
        assert any("no emulation model" in warning
                   for warning in emulator.stats.warnings)
