"""Coverage for KernelContext edges and miscellaneous small surfaces."""

from __future__ import annotations

import pytest

from repro.errors import KernelArgumentError, ProcessError
from repro.pipeline.context import KernelContext
from repro.pipeline.engine import KernelInstance
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import SingleTaskKernel


class _Dummy(SingleTaskKernel):
    def iteration_space(self, args):
        return [0]

    def body(self, ctx):
        yield ctx.compute(1)


def _context(fabric, tag=(3, 4), args=None):
    instance = KernelInstance(fabric, _Dummy(name="dummy"), args or {})
    return KernelContext(instance, iteration=tag)


class TestContextIdentity:
    def test_global_id_from_tuple(self, fabric):
        assert _context(fabric, tag=(7, 2)).global_id == 7

    def test_global_id_from_int(self, fabric):
        assert _context(fabric, tag=5).global_id == 5

    def test_global_id_invalid_tag(self, fabric):
        with pytest.raises(KernelArgumentError):
            _ = _context(fabric, tag=None).global_id

    def test_kernel_name_and_now(self, fabric):
        ctx = _context(fabric)
        assert ctx.kernel_name == "dummy"
        assert ctx.now == fabric.sim.now

    def test_missing_arg_reported_with_kernel_name(self, fabric):
        ctx = _context(fabric)
        with pytest.raises(KernelArgumentError, match="dummy"):
            ctx.arg("missing")

    def test_args_view(self, fabric):
        ctx = _context(fabric, args={"n": 3})
        assert ctx.args["n"] == 3


class TestContextChannelResolution:
    def test_channel_by_name(self, fabric):
        declared = fabric.channels.declare("c", depth=1)
        assert _context(fabric).channel("c") is declared

    def test_channel_array_by_name(self, fabric):
        fabric.channels.declare_array("arr", 3)
        assert len(_context(fabric).channel_array("arr")) == 3


class TestOpConstruction:
    def test_compute_negative_rejected(self, fabric):
        with pytest.raises(ValueError):
            _context(fabric).compute(-1)

    def test_mem_fence_is_zero_time_op(self, fabric):
        from repro.pipeline import ops
        fence = _context(fabric).mem_fence()
        assert isinstance(fence, ops.MemFence)

    def test_explicit_sites_carried(self, fabric):
        load = _context(fabric).load("buf", 0, site="S")
        assert load.site == "S"


class TestMiscSurfaces:
    def test_trace_buffer_total_writes_counts_past_capacity(self, sim):
        from repro.core.commands import SamplingMode
        from repro.core.trace_buffer import RAW_LAYOUT, TraceBuffer
        from repro.memory.local_memory import LocalMemory
        memory = LocalMemory(sim, "m", 2 * RAW_LAYOUT.words_per_entry)
        buffer = TraceBuffer(memory, RAW_LAYOUT, 2, SamplingMode.CYCLIC)
        for index in range(5):
            buffer.write({"timestamp": index, "value": index})
        assert buffer.total_writes == 5
        assert buffer.valid_entries == 2

    def test_ibuffer_words_per_readout(self, fabric):
        from repro.core.ibuffer import IBuffer, IBufferConfig
        from repro.core.logic_blocks import StallMonitorLogic
        ibuffer = IBuffer(fabric, "ib",
                          logic_factory=lambda cu: StallMonitorLogic(cu),
                          config=IBufferConfig(count=1, depth=10))
        # STALL layout: valid + timestamp + value + slot = 4 words/entry.
        assert ibuffer.words_per_readout == 40

    def test_engine_stats_total_cycles_none_before_finish(self, fabric):
        fabric.memory.allocate("src", 1)
        engine = fabric.launch(_Dummy(name="d2"), {})
        assert engine.stats.total_cycles is None
        fabric.run(engine.completion)
        assert engine.stats.total_cycles is not None

    def test_channel_stats_as_dict_keys(self, fabric):
        channel = fabric.channels.declare("c", depth=1)
        channel.write_nb(1)
        stats = channel.stats.as_dict()
        assert stats["writes"] == 1
        assert set(stats) == {"writes", "write_failures", "reads",
                              "read_failures", "write_stall_cycles",
                              "read_stall_cycles", "max_occupancy"}

    def test_resource_vector_as_dict(self):
        from repro.synthesis import ResourceVector
        vector = ResourceVector(alms=1, registers=2, memory_bits=3,
                                ram_blocks=4, dsps=5)
        assert vector.as_dict() == {"alms": 1, "registers": 2,
                                    "memory_bits": 3, "ram_blocks": 4,
                                    "dsps": 5}

    def test_interrupt_cause_property(self, sim):
        from repro.sim.core import Interrupt
        assert Interrupt("why").cause == "why"
