"""Property test: ``executor="batch"`` is observationally equal to the
reference executor.

Hypothesis generates random NDRange kernels — arithmetic on
``get_global_id``, divergent branches, private arrays, global loads and
stores (including read-modify-write patterns that trip the intra-launch
hazard detector) — and runs each under ``executor="batch"`` and
``executor="reference"`` on independent fabrics. Every externally
observable surface must match exactly: buffer contents, ``sim.now``,
engine statistics (including issue-stall cycles and the per-iteration
trace), global-memory statistics and per-buffer traffic, and the
per-(site, kind) LSU timing snapshots. Kernels the batch engine cannot
table-execute (divergence, hazards, barriers, ``__local`` memory) must
fall back transparently and still match — ``executor="batch"`` is always
safe to request.

Example budget: ``BATCH_EQUIV_EXAMPLES`` (default 60); CI runs a
dedicated step with a larger budget.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source, program_cache_clear
from repro.pipeline.fabric import Fabric

MAX_EXAMPLES = int(os.environ.get("BATCH_EQUIV_EXAMPLES", "60"))

_BUF = 16         # size of the in/out buffers
_ACC = 8          # size of the private array


@st.composite
def _exprs(draw, depth=0):
    """A source-text expression; total values stay modest via & masks."""
    leaves = [
        st.integers(-9, 9).map(str),
        st.sampled_from(["a", "b", "c", "n", "gid"]),
        st.just(f"in[((gid + a) & {_BUF - 1})]"),
        st.just(f"acc[(b & {_ACC - 1})]"),
    ]
    if depth >= 3:
        return draw(st.one_of(leaves))
    node = draw(st.integers(0, 9))
    if node <= 3:
        return draw(st.one_of(leaves))
    left = draw(_exprs(depth=depth + 1))
    right = draw(_exprs(depth=depth + 1))
    if node == 4:
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        return f"({left} {op} {right})"
    if node == 5:
        op = draw(st.sampled_from(["<", ">", "<=", ">=", "==", "!="]))
        return f"({left} {op} {right})"
    if node == 6:
        op = draw(st.sampled_from(["&&", "||"]))
        return f"({left} {op} {right})"
    if node == 7:
        op = draw(st.sampled_from(["/", "%"]))
        # Denominator folded into [1, 8] — never zero.
        return f"({left} {op} (1 + ({right} & 7)))"
    if node == 8:
        op = draw(st.sampled_from(["!", "-", "~"]))
        return f"({op}({left}))"
    shift = draw(st.integers(0, 3))
    return f"(({left} & 255) << {shift})"


@st.composite
def _stmts(draw, depth=0, loop_depth=0):
    """One source-text statement (possibly a nested block construct).

    Statements referencing ``gid`` in branch conditions make control
    flow diverge across work-items; ``out[...] op=`` statements read and
    write the output buffer, tripping the batch hazard detector. Both
    force the batch engine down its fallback path — on purpose: the
    property holds regardless of which path executes the launch.
    """
    node = draw(st.integers(0, 11))
    if node <= 2:
        target = draw(st.sampled_from(["a", "b", "c"]))
        op = draw(st.sampled_from(["=", "+=", "-=", "*="]))
        return f"{target} {op} {draw(_exprs())};"
    if node == 3:
        return f"acc[((gid + a) & {_ACC - 1})] = {draw(_exprs())};"
    if node == 4:
        op = draw(st.sampled_from(["=", "+=", "-="]))
        return f"out[(b & {_BUF - 1})] {op} {draw(_exprs())};"
    if node == 5:
        target = draw(st.sampled_from(["a", "b", "c"]))
        return f"{target}{draw(st.sampled_from(['++', '--']))};"
    if node == 6:
        return f"out[(c & {_BUF - 1})] = in[(a & {_BUF - 1})];"
    if depth >= 2 or node <= 8:
        return f"a = {draw(_exprs())};"
    inner = draw(st.lists(_stmts(depth=depth + 1, loop_depth=loop_depth),
                          min_size=1, max_size=3))
    block = " ".join(inner)
    if node == 9:
        other = draw(st.lists(_stmts(depth=depth + 1, loop_depth=loop_depth),
                              min_size=0, max_size=2))
        else_block = (" else { " + " ".join(other) + " }") if other else ""
        return f"if ({draw(_exprs())}) {{ {block} }}{else_block}"
    if node == 10 and loop_depth < 2:
        var = f"i{loop_depth}"
        bound = draw(st.integers(1, 4))
        inner = draw(st.lists(
            _stmts(depth=depth + 1, loop_depth=loop_depth + 1),
            min_size=1, max_size=3))
        return (f"for (int {var} = 0; {var} < {bound}; {var}++) "
                f"{{ {' '.join(inner)} c += {var}; }}")
    return f"{{ int t = {draw(_exprs())}; b = t + 1; }}"


@st.composite
def _kernel_sources(draw):
    body = draw(st.lists(_stmts(), min_size=1, max_size=8))
    lines = [
        "int gid = get_global_id(0);",
        f"int a = {draw(st.integers(0, 9))};",
        f"int b = {draw(st.integers(0, 9))};",
        "int c = 0;",
        f"int acc[{_ACC}];",
    ] + body + [
        f"out[(gid & {_BUF - 1})] = c + acc[((gid + b) & {_ACC - 1})];",
    ]
    return (
        "__kernel void k(__global int* in, __global int* out, int n) {\n"
        + "\n".join("    " + line for line in lines) + "\n}\n")


def _lsu_snapshot(engine):
    """Per-LSU timing stats with *rank-normalized* site labels.

    Each ``compile_source`` call parses fresh AST nodes, so the numeric
    part of a site label (``k:n<node_id>``) differs between the two
    compiles even though the ASTs are structurally identical. Node ids
    are assigned in parse order, so ranking them restores a stable
    correspondence: the i-th static site of one compile must carry
    exactly the timings of the i-th static site of the other.
    """
    raw = {}
    for (site, kind), lsu in engine.lsus.items():
        stats = lsu.stats
        raw[(site, kind)] = (
            stats.issued, stats.completed, stats.total_latency,
            stats.max_latency, stats.ordering_stall_cycles,
            tuple(stats.samples))

    def _site_id(site):
        kernel, _, node = site.rpartition(":n")
        return (kernel, int(node))

    ordered = sorted({site for site, _ in raw}, key=_site_id)
    rank = {site: f"{_site_id(site)[0]}:site{index}"
            for index, site in enumerate(ordered)}
    return {(rank[site], kind): value
            for (site, kind), value in raw.items()}


def _memory_snapshot(fabric):
    stats = fabric.memory.stats
    return (
        (stats.loads, stats.stores, stats.row_hits, stats.row_misses,
         stats.total_load_latency, stats.bytes_read, stats.bytes_written),
        {name: (t.loads, t.stores, t.bytes_read, t.bytes_written)
         for name, t in fabric.memory.traffic.items()},
    )


def _run_generated(source, global_size, executor, kernel="k",
                   buffers=(("IN", "in"), ("OUT", "out")), n=7):
    fabric = Fabric(keep_lsu_samples=True)
    program = compile_source(fabric, source)
    args = {"n": n, "__global_size": global_size}
    for alloc_name, arg_name in buffers:
        fabric.memory.allocate(alloc_name, _BUF).fill(
            np.arange(_BUF) * 3 - 5)
        args[arg_name] = alloc_name
    engine = fabric.run_kernel(program.kernel(kernel), args,
                               executor=executor)
    return fabric, engine


def _assert_equivalent(batch, ref, buffers):
    batch_fabric, batch_engine = batch
    ref_fabric, ref_engine = ref
    assert batch_fabric.sim.now == ref_fabric.sim.now
    bs, rs = batch_engine.stats, ref_engine.stats
    assert (bs.iterations_issued, bs.iterations_retired) == \
        (rs.iterations_issued, rs.iterations_retired)
    assert (bs.start_cycle, bs.finish_cycle) == \
        (rs.start_cycle, rs.finish_cycle)
    assert bs.issue_stall_cycles == rs.issue_stall_cycles
    assert bs.iteration_trace == rs.iteration_trace
    assert _lsu_snapshot(batch_engine) == _lsu_snapshot(ref_engine)
    assert _memory_snapshot(batch_fabric) == _memory_snapshot(ref_fabric)
    assert batch_fabric.memory.pending_commits == 0
    assert ref_fabric.memory.pending_commits == 0
    for name in buffers:
        batch_buffer = batch_fabric.memory.buffer(name)
        ref_buffer = ref_fabric.memory.buffer(name)
        assert list(batch_buffer.snapshot()) == list(ref_buffer.snapshot()), \
            f"buffer {name!r} diverged"


class TestBatchEquivalence:
    @given(source=_kernel_sources(), global_size=st.integers(0, 12))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_batch_matches_reference(self, source, global_size):
        program_cache_clear()
        batch = _run_generated(source, global_size, "batch")
        ref = _run_generated(source, global_size, "reference")
        outcome = batch[1].batch
        assert outcome.mode in ("table", "fallback")
        if outcome.mode == "table":
            assert outcome.divergence == 0 and outcome.reason == ""
        _assert_equivalent(batch, ref, ["IN", "OUT"])

    @given(n=st.integers(1, 16))
    @settings(max_examples=max(4, MAX_EXAMPLES // 10), deadline=None)
    def test_local_and_barrier_kernels_fall_back_and_match(self, n):
        """The canonical __local + barrier work-group reverse: statically
        ineligible for table mode, still bit-equal through the fallback."""
        source = """
        __kernel void reverse(__global int* in, __global int* out, int n) {
            __local int stage[%d];
            int gid = get_global_id(0);
            stage[gid] = in[gid];
            barrier(CLK_LOCAL_MEM_FENCE);
            out[gid] = stage[n - 1 - gid];
        }
        """ % _BUF
        program_cache_clear()
        batch = _run_generated(source, n, "batch", kernel="reverse", n=n)
        ref = _run_generated(source, n, "reference", kernel="reverse", n=n)
        assert batch[1].batch.mode == "fallback"
        assert batch[1].batch.reason == "__local memory"
        _assert_equivalent(batch, ref, ["IN", "OUT"])
        assert list(batch[0].memory.buffer("OUT").snapshot())[:n] == \
            list(batch[0].memory.buffer("IN").snapshot())[:n][::-1]


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.mark.skipif(_cpus() < 4,
                    reason="wall-clock speedup gate needs an unloaded host "
                           "with >= 4 CPUs")
class TestBatchSpeedupGate:
    def test_ndrange_batch_speedup_floor(self):
        """The tentpole's acceptance floor: >= 3x sim-cycles/s over the
        fast executor on the convergent NDRange benchmark workload."""
        from repro.perf import harness

        value, detail = harness.bench_ndrange_batch()
        assert detail["batch_modes"] == ["table", "table"]
        assert detail["speedup_vs_fast"] >= 3.0, (
            f"batch speedup {detail['speedup_vs_fast']:.2f}x < 3x "
            f"(batch {value:,.0f} vs fast "
            f"{detail['fast_sim_cycles_per_s']:,.0f} sim-cycles/s)")
        assert value > 0
