"""Property test: the calendar-queue scheduler dequeues in exactly the
seed ``heapq`` order.

The seed implementation kept one heap of ``(time, priority, seq, event)``
tuples; the calendar queue replaces it with per-cycle priority lanes plus
a far-future heap. For the scheduler's contract — integer cycle times and
the three fixed priorities — the dequeue order must be *identical*,
including FIFO order within one ``(time, priority)`` bucket and the merge
between near (wheel) and far (heap) events. This test drives both
implementations with randomized schedules, including events scheduled
from inside callbacks, delays straddling the wheel horizon, and multiple
wheel revolutions.
"""

from __future__ import annotations

import heapq
import random

import pytest

from repro.sim.core import (
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    Simulator,
)

#: Delays chosen to stress every queue path: same-cycle, dense stepping,
#: DDR-ish latencies, the wheel horizon boundary (255/256), and far-future.
DELAY_CHOICES = (0, 0, 1, 1, 2, 3, 5, 17, 38, 100, 254, 255, 256, 257,
                 300, 512, 1000, 4096)
PRIORITY_CHOICES = (PRIORITY_URGENT, PRIORITY_NORMAL, PRIORITY_LATE,
                    PRIORITY_NORMAL, PRIORITY_NORMAL)


class SeedOrderQueue:
    """The seed scheduler, verbatim in miniature: one heapq of
    ``(time, priority, seq, label)`` with a global sequence counter."""

    def __init__(self) -> None:
        self._heap = []
        self._seq = 0
        self.now = 0

    def schedule(self, delay, priority, label) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, priority, self._seq, label))

    def drain(self, children) -> list:
        """Pop everything; ``children[label]`` may schedule follow-ups."""
        order = []
        while self._heap:
            time, priority, _seq, label = heapq.heappop(self._heap)
            self.now = time
            order.append((time, priority, label))
            for delay, child_priority, child_label in children.get(label, ()):
                self.schedule(delay, child_priority, child_label)
        return order


def _make_plan(rng: random.Random, roots: int, fanout: float):
    """Random schedule: root events plus callback-scheduled children."""
    plan = []
    children = {}
    label = 0
    for _ in range(roots):
        plan.append((rng.choice(DELAY_CHOICES), rng.choice(PRIORITY_CHOICES),
                     label))
        parent = label
        label += 1
        kids = []
        while rng.random() < fanout and len(kids) < 3:
            kids.append((rng.choice(DELAY_CHOICES),
                         rng.choice(PRIORITY_CHOICES), label))
            label += 1
        if kids:
            children[parent] = kids
    return plan, children


def _simulator_order(plan, children):
    """Run the same plan on the real Simulator, recording processed order."""
    sim = Simulator()
    order = []

    def on_processed(event):
        label = event.value
        order.append((sim.now, event._priority_tag, label))
        for delay, child_priority, child_label in children.get(label, ()):
            _schedule(delay, child_priority, child_label)

    def _schedule(delay, priority, label):
        event = sim.timeout(delay, value=label, priority=priority)
        # Remember the priority for the comparison triple (the simulator
        # does not retain it past scheduling).
        event._priority_tag = priority
        event.add_callback(on_processed)

    for delay, priority, label in plan:
        _schedule(delay, priority, label)
    sim.run()
    return order


# Timeout lacks a __dict__ under __slots__; give the test a tagged variant.
@pytest.fixture(autouse=True)
def _allow_priority_tag(monkeypatch):
    import repro.sim.core as core

    class TaggedTimeout(core.Timeout):
        __slots__ = ("_priority_tag",)

    monkeypatch.setattr(
        Simulator, "timeout",
        lambda self, delay, value=None, priority=PRIORITY_NORMAL:
            TaggedTimeout(self, delay, value, priority))


@pytest.mark.parametrize("seed", range(25))
def test_dequeue_order_matches_seed_heapq(seed):
    rng = random.Random(seed)
    plan, children = _make_plan(rng, roots=80, fanout=0.55)

    reference = SeedOrderQueue()
    for delay, priority, label in plan:
        reference.schedule(delay, priority, label)
    expected = reference.drain(children)

    assert _simulator_order(plan, children) == expected


def test_dense_same_cycle_fifo_across_lanes():
    """Many events at one cycle: lanes must preserve per-priority FIFO and
    global priority order."""
    plan = [(5, priority, index) for index, priority in enumerate(
        [1, 2, 0, 1, 0, 2, 1, 0, 2, 1] * 20)]
    reference = SeedOrderQueue()
    for delay, priority, label in plan:
        reference.schedule(delay, priority, label)
    assert _simulator_order(plan, {}) == reference.drain({})


def test_far_events_merge_before_equal_priority_wheel_events():
    """A far-future event reaching time T was scheduled strictly earlier
    than any wheel event at T, so at equal priority it must pop first."""
    plan = [(300, PRIORITY_NORMAL, "far")]
    children = {"far": []}
    # A chain that walks the wheel right up to cycle 300 and schedules a
    # same-cycle competitor there.
    plan += [(299, PRIORITY_NORMAL, "walker")]
    children["walker"] = [(1, PRIORITY_NORMAL, "wheel-at-300")]
    reference = SeedOrderQueue()
    for delay, priority, label in plan:
        reference.schedule(delay, priority, label)
    expected = reference.drain(children)
    assert _simulator_order(plan, children) == expected
    assert [label for _, _, label in expected][-2:] == ["far", "wheel-at-300"]


def test_multi_revolution_wraparound():
    """Chained single-cycle steps across many wheel revolutions interleaved
    with far-future events stay ordered."""
    sim = Simulator()
    order = []

    def stepper():
        for _ in range(1200):
            yield sim.tick()
        order.append(("stepper", sim.now))

    def sleeper():
        yield sim.timeout(1100)
        order.append(("sleeper", sim.now))

    sim.process(stepper())
    sim.process(sleeper())
    sim.run()
    assert order == [("sleeper", 1100), ("stepper", 1200)]
