# Convenience targets for the DAC'17 reproduction.

.PHONY: install test bench experiments examples all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro all

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null && echo OK; done

all: test bench experiments
