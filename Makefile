# Convenience targets for the DAC'17 reproduction.

.PHONY: install test bench bench-perf profile sweep-demo experiments examples trace-demo all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Simulator perf suite: writes BENCH_sim.json and fails on >20% regression
# against benchmarks/perf/baseline.json (see docs/PERFORMANCE.md).
bench-perf:
	python -m repro bench

# One cProfile run per benchmark; pstats files land in profiles/
# (inspect with: python -m pstats profiles/<name>.pstats).
profile:
	python -m repro bench --profile

# Shard the §4 scalability grid across worker processes and verify the
# merged report is byte-identical to a serial run (docs/PERFORMANCE.md,
# "Parallel sweeps").
sweep-demo:
	python -m repro sweep scalability --simulate > sweep_par.txt
	python -m repro sweep scalability --simulate --serial > sweep_ser.txt
	diff sweep_par.txt sweep_ser.txt && echo "parallel == serial"

experiments:
	python -m repro all

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null && echo OK; done

# Capture a Figure 2 trace bundle and export a Perfetto-loadable JSON
# (load fig2.trace.json at https://ui.perfetto.dev; see docs/TRACING.md).
trace-demo:
	python -m repro run fig2 --trace-out fig2.ctb
	python -m repro trace info fig2.ctb
	python -m repro trace export fig2.ctb --format chrome -o fig2.trace.json

all: test bench experiments
