# Convenience targets for the DAC'17 reproduction.

.PHONY: install test bench bench-perf experiments examples all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Simulator perf suite: writes BENCH_sim.json and fails on >20% regression
# against benchmarks/perf/baseline.json (see docs/PERFORMANCE.md).
bench-perf:
	python -m repro bench

experiments:
	python -m repro all

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null && echo OK; done

all: test bench experiments
