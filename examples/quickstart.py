"""Quickstart: run an OpenCL kernel on the simulated FPGA and profile it.

Mirrors a minimal AOCL host program: enumerate platforms, create a context
and queue, allocate buffers, enqueue a kernel, read results — then use the
paper's HDL timestamp pattern to measure an event inside the kernel.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core.timestamp import HDLTimestampService
from repro.host import CommandQueue, Context, Program, get_platforms
from repro.kernels.dot_product import DotProductKernel
from repro.kernels.vecadd import VecAddKernel


def main() -> None:
    platform = get_platforms()[0]
    print(f"platform: {platform.name}")
    for device in platform.devices:
        print(f"  device: {device.name}")

    # --- 1. plain vecadd through the host API -------------------------
    context = Context(platform.devices[0])
    queue = CommandQueue(context)
    n = 64
    context.create_buffer("a", n).write(np.arange(n))
    context.create_buffer("b", n).write(np.arange(n)[::-1].copy())
    c = context.create_buffer("c", n)

    event = queue.enqueue_kernel(VecAddKernel(), {"n": n})
    queue.finish()
    assert (c.read() == n - 1).all()
    info = event.profiling_info()
    print(f"\nvecadd over {n} elements: {info['duration']} cycles "
          f"(queued@{info['queued']}, start@{info['start']}, end@{info['end']})")

    # --- 2. the paper's HDL timestamp pattern (Listings 3-4) ----------
    hdl = HDLTimestampService(context.fabric, context.hdl_library)
    kernel = DotProductKernel(timestamps="hdl", hdl=hdl)
    context.create_buffer("x", n).write(np.arange(n))
    context.create_buffer("y", n).write(np.ones(n, dtype=np.int64))
    z = context.create_buffer("z", 1)

    queue.enqueue_kernel(kernel, {"n": n})
    queue.finish()
    start_t, end_t = kernel.measurements[0]
    print(f"dot product = {int(z.read()[0])} "
          f"(expected {int(np.arange(n).sum())})")
    print(f"event of interest took {end_t - start_t} cycles "
          f"(read site 1 @ {start_t}, read site 2 @ {end_t})")

    # --- 3. the synthesis report for this image ------------------------
    program = Program(context, [VecAddKernel(name="vecadd_img"), kernel],
                      name="quickstart")
    report = program.synthesis_report()
    print()
    print(report.render())


if __name__ == "__main__":
    main()
