"""Run the paper's OpenCL listings as *source code* on the simulated fabric.

The paper's framework is "entirely coded in high-level programming
languages such as OpenCL" — so this reproduction ships a mini OpenCL-C
frontend and executes the listings themselves: the Listing 1 timestamp
counter, the Listing 5 sequence server, and a Listing 6/7-style
matrix-vector kernel whose info buffers reproduce Figure 2's observation.

Run:  python examples/run_paper_listings.py
"""

from __future__ import annotations

import numpy as np

from repro.frontend import compile_source
from repro.pipeline.fabric import Fabric

PAPER_SOURCE = r"""
// Listing 1: the timestamp pattern using a persistent autorun kernel
channel int time_ch1 __attribute__((depth(0)));

__attribute__((autorun))
__kernel void timer_srv(void) {
    int count = 0;
    while (1) {
        bool success;
        count++;
        success = write_channel_nb_altera(time_ch1, count);
    }
}

// Listing 5: the sequence-number pattern
channel int seq_ch __attribute__((depth(0)));

__attribute__((autorun))
__kernel void seq_srv(void) {
    int count = 0;
    while (1) {
        count++;
        write_channel_altera(seq_ch, count);
    }
}

// Listing 7: the instrumented NDRange matrix-vector multiply
__kernel void matvec(__global int* x, __global int* y, __global int* z,
                     __global int* info1, __global int* info2,
                     __global int* info3, int num) {
    int k = get_global_id(0);
    int l = k * num;
    int sum = 0;
    for (int i = 0; i < num; i++) {
        sum += x[i + l] * y[i];
        if (i < 10) {
            int seq = read_channel_altera(seq_ch);
            info1[seq] = read_channel_altera(time_ch1);
            info2[seq] = k;
            info3[seq] = i;
        }
    }
    z[k] = sum;
}
"""


def main() -> None:
    fabric = Fabric()
    program = compile_source(fabric, PAPER_SOURCE)
    print("compiled kernels:",
          {name: kernel.kind for name, kernel in program.kernels.items()})

    n_rows, num, probe = 12, 20, 10
    fabric.memory.allocate("X", n_rows * num).fill(np.arange(n_rows * num))
    fabric.memory.allocate("Y", num).fill(np.arange(num))
    fabric.memory.allocate("Z", n_rows)
    for name in ("I1", "I2", "I3"):
        fabric.memory.allocate(name, n_rows * probe + 1)

    fabric.run_kernel(program.kernel("matvec"), {
        "__global_size": n_rows, "x": "X", "y": "Y", "z": "Z",
        "info1": "I1", "info2": "I2", "info3": "I3", "num": num})

    z = fabric.memory.buffer("Z").snapshot()
    expected = (np.arange(n_rows * num).reshape(n_rows, num)
                * np.arange(num)).sum(axis=1)
    print(f"matvec result correct: {np.array_equal(z, expected)}")

    info1 = fabric.memory.buffer("I1").snapshot()
    info2 = fabric.memory.buffer("I2").snapshot()
    info3 = fabric.memory.buffer("I3").snapshot()
    print("\nthe Figure 2(b) observation, from compiled source "
          "(info_seq rows):")
    print(f"{'':14s}Timestamp     k     i")
    for seq in range(1, 9):
        print(f"info_seq[{seq:3d}]: {int(info1[seq]):9d} "
              f"{int(info2[seq]):5d} {int(info3[seq]):5d}")
    print("work-items enter the pipeline before any advances its inner "
          "loop — observed via the paper's own primitives, compiled from "
          "the paper's own source.")


if __name__ == "__main__":
    main()
