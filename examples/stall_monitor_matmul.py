"""§5.1 walkthrough: find out *why* your kernel is slow with a stall monitor.

Instruments the matrix-multiply `data_a` load with take_snapshot sites
(Listing 9), drives the full host command protocol through the host
interface kernel (Listing 10), and post-processes the trace into a load
latency distribution — the stalls are plainly visible.

Run:  python examples/stall_monitor_matmul.py
"""

from __future__ import annotations

from repro.analysis.latency import histogram, render_latency_table, stall_attribution, summarize
from repro.core.commands import IBufferState, SamplingMode
from repro.core.stall_monitor import StallMonitor
from repro.kernels.matmul import MatMulKernel, allocate_matmul_buffers
from repro.pipeline.fabric import Fabric


def main() -> None:
    fabric = Fabric()

    # The monitor starts in RESET: we drive the full Figure 3 protocol.
    monitor = StallMonitor(fabric, sites=2, depth=512,
                           mode=SamplingMode.LINEAR,
                           initial_state=IBufferState.RESET)
    kernel = MatMulKernel(stall_monitor=monitor)
    allocate_matmul_buffers(fabric, rows_a=8, col_a=16, col_b=8)

    # Host: arm both ibuffer instances before launching the kernel.
    for site in range(2):
        monitor.host.sample(site)

    print("running instrumented matmul (8x16 @ 16x8)...")
    engine = fabric.run_kernel(kernel, {"rows_a": 8, "col_a": 16, "col_b": 8})
    print(f"kernel finished in {engine.stats.total_cycles} cycles "
          f"({engine.stats.iterations_retired} pipeline iterations)")

    # Host: stop sampling, read both traces, pair them into latencies.
    samples = monitor.latencies(0, 1)
    stats = summarize(samples)
    print()
    print(render_latency_table(stats, "data_a load latency"))

    config = fabric.memory.config
    unloaded = (config.pipe_latency + config.row_hit_cycles
                + config.bank_busy_cycles)
    stall_cycles, stalled_fraction = stall_attribution(samples, unloaded)
    print(f"\nunloaded access latency : {unloaded} cycles")
    print(f"total stall cycles      : {stall_cycles}")
    print(f"fraction of stalled ops : {stalled_fraction:.1%}")

    print("\nlatency histogram (bin -> count):")
    for lower, count in histogram(samples, bin_width=64).items():
        print(f"  {lower:5d}+ : {'#' * min(count, 60)} {count}")


if __name__ == "__main__":
    main()
