"""Profiling a multi-kernel channel pipeline (§4's replication use case).

"Users may want to probe into multiple kernels or have multiple calling
sites inside a kernel. This requires multiple ibuffer instances..."

A producer kernel streams values into an AOCL channel; a slower consumer
kernel drains it. Each kernel snapshots into its *own* ibuffer instance
(compute units 0 and 1 of one replicated ibuffer kernel). Merging the two
traces by timestamp reconstructs the global event order and exposes the
channel backpressure on the producer.

Run:  python examples/multi_kernel_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.core.stall_monitor import StallMonitor
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import SingleTaskKernel


class Producer(SingleTaskKernel):
    """Streams src[i] into the channel, snapshotting each send."""

    def __init__(self, channel, monitor, **kw):
        super().__init__(**kw)
        self.channel = channel
        self.monitor = monitor

    def iteration_space(self, args):
        return range(args["n"])

    def body(self, ctx):
        value = yield ctx.load("src", ctx.iteration)
        self.monitor.take_snapshot(ctx, 0, ctx.iteration)   # probe kernel 1
        yield ctx.write_channel(self.channel, value)        # may backpressure


class Consumer(SingleTaskKernel):
    """Drains the channel with extra per-item work, snapshotting each recv."""

    def __init__(self, channel, monitor, ii=1, **kw):
        from repro.pipeline.kernel import PipelineConfig
        super().__init__(pipeline=PipelineConfig(ii=ii, max_inflight=1), **kw)
        self.channel = channel
        self.monitor = monitor

    def iteration_space(self, args):
        return range(args["n"])

    def body(self, ctx):
        value = yield ctx.read_channel(self.channel)
        self.monitor.take_snapshot(ctx, 1, ctx.iteration)   # probe kernel 2
        yield ctx.compute(ctx.arg("work"))                  # slower than producer
        yield ctx.store("dst", ctx.iteration, value * 2)


def main() -> None:
    fabric = Fabric()
    n, work = 48, 9
    channel = fabric.channels.declare("stream", depth=4, width_bits=64)
    monitor = StallMonitor(fabric, sites=2, depth=256, name="pipe_mon")
    fabric.memory.allocate("src", n).fill(np.arange(n) + 100)
    dst = fabric.memory.allocate("dst", n)

    producer = fabric.launch(Producer(channel, monitor, name="producer"),
                             {"n": n})
    consumer = fabric.launch(
        Consumer(channel, monitor, ii=work, name="consumer"),
        {"n": n, "work": work})
    fabric.run(producer.completion, consumer.completion)
    fabric.run(fabric.memory.drained())
    assert (dst.snapshot() == (np.arange(n) + 100) * 2).all()

    sends = monitor.read_site(0)
    recvs = monitor.read_site(1)
    merged = sorted(
        [("send", e["timestamp"], e["value"]) for e in sends]
        + [("recv", e["timestamp"], e["value"]) for e in recvs],
        key=lambda event: event[1])

    print("global event order (first 14 events, merged by timestamp):")
    for kind, cycle, item in merged[:14]:
        print(f"  cycle {cycle:6d}  {kind:4s} item {item}")

    # Per-item channel residency: recv time - send time.
    send_at = {e["value"]: e["timestamp"] for e in sends}
    recv_at = {e["value"]: e["timestamp"] for e in recvs}
    residency = [recv_at[i] - send_at[i] for i in range(n)
                 if i in send_at and i in recv_at]
    print(f"\nchannel residency: min {min(residency)}, "
          f"max {max(residency)} cycles over {len(residency)} items")
    print(f"producer write-stall cycles (backpressure): "
          f"{channel.stats.write_stall_cycles}")
    print("the slow consumer throttles the producer after the 4-deep "
          "channel fills — visible in both the traces and the stall counters")


if __name__ == "__main__":
    main()
