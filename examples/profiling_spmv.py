"""Profiling an irregular workload end-to-end: SpMV under three lenses.

Sparse matrix-vector multiply gathers ``x[col_idx[j]]`` at data-dependent
addresses — the classic "why is my kernel slow?" case. This walkthrough
profiles the gather three ways and shows what each can (and cannot) say:

1. the **vendor-style aggregate profiler** — mean latency and bandwidth;
2. the **stall monitor** (§5.1) — the full latency trace, rendered as
   distribution, occupancy timeline, and exportable VCD/CSV;
3. an **on-chip histogram ibuffer** (a processing logic block) — the
   distribution with constant trace storage.

Run:  python examples/profiling_spmv.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.latency import histogram, render_latency_table, summarize
from repro.analysis.timeline import latency_timeline, occupancy_timeline
from repro.analysis.vcd import vcd_from_entries
from repro.core.ibuffer import IBuffer, IBufferConfig
from repro.core.processing import HistogramLogic
from repro.core.stall_monitor import StallMonitor
from repro.core.vendor_profiler import VendorProfiler
from repro.kernels.spmv import SpMVKernel, allocate_spmv_buffers, expected_spmv
from repro.pipeline.fabric import Fabric


def main() -> None:
    fabric = Fabric()
    rows, columns, nnz = 16, 4096, 8

    monitor = StallMonitor(fabric, sites=2, depth=1024, name="gather_mon")
    profiler = VendorProfiler(fabric)
    allocate_spmv_buffers(fabric, rows, columns, nnz)

    kernel = SpMVKernel([nnz] * rows, stall_monitor=monitor)
    engine = fabric.run_kernel(kernel, {"rows": rows})
    y = fabric.memory.buffer("y").snapshot()
    assert np.array_equal(y, expected_spmv(fabric, rows, nnz))
    print(f"SpMV {rows}x{columns} ({rows * nnz} nnz) finished in "
          f"{engine.stats.total_cycles} cycles; result verified")

    # -- lens 1: aggregate counters -------------------------------------
    print("\n[1] vendor-style aggregate profiler:")
    report = profiler.report(engine)
    busiest = report.busiest_site()
    print(f"    busiest site: {busiest.site}")
    print(f"    accesses {busiest.accesses}, mean "
          f"{busiest.mean_latency_cycles:.1f}, max "
          f"{busiest.max_latency_cycles} cycles — and that is all it says")

    # -- lens 2: the stall monitor's trace -------------------------------
    print("\n[2] stall monitor (full per-event trace):")
    samples = monitor.latencies(0, 1)
    dropped = monitor.dropped_snapshots(0) + monitor.dropped_snapshots(1)
    if dropped:
        print(f"    note: {dropped} snapshots dropped in retirement bursts "
              "(non-blocking probes never stall the kernel); the trace is "
              "a sample")
    print("    " + render_latency_table(summarize(samples),
                                        "x[] gather latency"
                                        ).replace("\n", "\n    "))
    print("    histogram:", dict(histogram(samples, bin_width=64)))
    print("    " + occupancy_timeline(samples, bin_width=64)
          .render("in-flight gathers"))
    print("    " + latency_timeline(samples, bin_width=64)
          .render("mean latency    "))
    vcd = vcd_from_entries(monitor.read_site(1), module="gather")
    print(f"    VCD export: {len(vcd.splitlines())} lines "
          "(load into GTKWave)")

    # -- lens 3: constant-storage histogram on chip ------------------------
    print("\n[3] on-chip histogram ibuffer (constant trace storage):")
    fabric2 = Fabric()
    hist_buffer = IBuffer(fabric2, "hist",
                          logic_factory=lambda cu: HistogramLogic(
                              bin_width=64, bins=16),
                          config=IBufferConfig(count=1, depth=16))
    from repro.core.host_interface import HostController
    controller = HostController(fabric2, hist_buffer)
    allocate_spmv_buffers(fabric2, rows, columns, nnz)

    class FeedLatencies(SpMVKernel):
        """SpMV variant streaming each gather's latency into the ibuffer."""
        def body(self, ctx):
            row, local, flat = ctx.iteration
            column = yield ctx.load("col_idx", flat)
            value = yield ctx.load("values", flat)
            start = ctx.now
            xv = yield ctx.load("x", column)
            ctx.write_channel_nb(hist_buffer.data_c[0], ctx.now - start)
            ctx.accumulate("dot", row, value * xv)
            if local == self.row_lengths[row] - 1:
                total = yield ctx.collect("dot", row,
                                          expected=self.row_lengths[row])
                yield ctx.store("y", row, total)

    fabric2.run_kernel(FeedLatencies([nnz] * rows, name="spmv_hist"),
                       {"rows": rows})
    controller.stop()
    bins = {e["bin_low"]: e["count"] for e in controller.read_trace()}
    print(f"    on-chip bins: {bins}")
    print(f"    total events characterized: {sum(bins.values())} "
          f"in {hist_buffer.config.depth} trace slots")


if __name__ == "__main__":
    main()
