"""Seeing the pipeline: Gantt views and one-page run profiles.

"The synthesized hardware is fundamentally parallel ... It is essential
to provide software developers with facilities to see how operations are
executed" (§1). This walkthrough renders exactly that: iteration
lifetimes of a deeply pipelined kernel vs a fully serialized one, plus
the one-call run profile combining all the library's lenses.

Run:  python examples/pipeline_visualizer.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.gantt import peak_concurrency, pipelining_speedup, render_gantt
from repro.core.report import summarize_run
from repro.core.stall_monitor import StallMonitor
from repro.kernels.matmul import MatMulKernel, allocate_matmul_buffers
from repro.kernels.pointer_chase import PointerChaseKernel, build_chain
from repro.kernels.vecadd import VecAddKernel
from repro.pipeline.fabric import Fabric


def main() -> None:
    # -- a pipelined kernel: iterations overlap massively ---------------
    fabric = Fabric()
    n = 24
    fabric.memory.allocate("a", n).fill(np.arange(n))
    fabric.memory.allocate("b", n).fill(np.arange(n))
    fabric.memory.allocate("c", n)
    vec = fabric.run_kernel(VecAddKernel(), {"n": n})
    trace = vec.stats.iteration_trace
    print("vecadd (pipelined NDRange):")
    print(render_gantt(trace, width=56, max_rows=12))
    print(f"-> {pipelining_speedup(trace):.1f}x overlap, "
          f"peak {peak_concurrency(trace)} work-items in flight\n")

    # -- a serialized kernel: the dependency chain shows as a staircase --
    from repro.pipeline.kernel import PipelineConfig, SingleTaskKernel

    class SteppedChase(SingleTaskKernel):
        """One iteration per dereference; the loop-carried index forces
        strictly serial execution, so each Gantt row starts where the
        previous ended."""

        def __init__(self):
            super().__init__(name="stepped_chase",
                             pipeline=PipelineConfig(max_inflight=1))
            self._index = 0

        def iteration_space(self, args):
            return range(args["steps"])

        def body(self, ctx):
            index = self._index if ctx.iteration else ctx.arg("start")
            self._index = yield ctx.load("ptr", index)

    chase_fabric = Fabric()
    chase_fabric.memory.allocate("ptr", 64).fill(build_chain(64))
    chase = chase_fabric.run_kernel(SteppedChase(), {"start": 0, "steps": 12})
    print("pointer chase (dependency-serialized):")
    print(render_gantt(chase.stats.iteration_trace, width=56, max_rows=12))
    print(f"-> {pipelining_speedup(chase.stats.iteration_trace):.1f}x "
          "overlap: the load-to-address chain forbids pipelining\n")

    # -- the one-page profile of an instrumented run -----------------------
    profile_fabric = Fabric()
    monitor = StallMonitor(profile_fabric, sites=2, depth=512)
    kernel = MatMulKernel(stall_monitor=monitor)
    allocate_matmul_buffers(profile_fabric, 4, 8, 4)
    engine = profile_fabric.run_kernel(kernel, {"rows_a": 4, "col_a": 8,
                                                "col_b": 4})
    print(summarize_run(profile_fabric, engine, monitor=monitor))


if __name__ == "__main__":
    main()
