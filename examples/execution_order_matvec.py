"""Figure 2 walkthrough: observe how the compiler schedules your loops.

The same matrix-vector multiply is compiled two ways — a single-task
nested loop (Listing 6) and an NDRange kernel (Listing 7). The sequence
number and timestamp primitives reveal that the synthesized hardware
executes them in *different orders*, with different memory access
patterns and different run times.

Run:  python examples/execution_order_matvec.py
"""

from __future__ import annotations

from repro.experiments import fig2


def main() -> None:
    result = fig2.run()   # the paper's N=50, num=100, probing i<10
    print(result.render())

    print("\n--- interpretation (paper §3.2) ---")
    single, ndrange = result.single_task, result.ndrange
    print(f"single-task accesses x as {single.access_order[:4]} ... "
          "(unit stride: all inner iterations first)")
    print(f"NDRange accesses x as {ndrange.access_order[:4]} ... "
          "(num-stride: work-items interleave)")
    faster = ("single-task" if single.total_cycles < ndrange.total_cycles
              else "NDRange")
    print(f"the different access patterns make {faster} faster on this "
          "memory system "
          f"({single.total_cycles} vs {ndrange.total_cycles} cycles)")


if __name__ == "__main__":
    main()
