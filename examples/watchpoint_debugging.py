"""§5.2 walkthrough: catch an out-of-bounds read and a corrupted invariant.

A deliberately buggy kernel reads past the end of its input buffer and
overwrites a location that should stay constant. Smart watchpoints —
address bound checking and value invariance checking running *on the
FPGA, at speed* — catch both, with cycle-accurate timestamps.

Run:  python examples/watchpoint_debugging.py
"""

from __future__ import annotations

from repro.analysis.violations import decode_events, render_watch_report, value_history
from repro.experiments import sec52


def main() -> None:
    result = sec52.run(n=24, offset=4, src_size=24, depth=256)
    print(result.render())

    print("\n--- value history of the watched output location ---")
    history = value_history(result.watch_hits)
    for cycle, value in history[:10]:
        print(f"  cycle {cycle:6d}: value = {value}")
    if len(history) > 10:
        print(f"  ... {len(history) - 10} more updates")

    print("\nverdicts:")
    print(f"  bound checking      : "
          f"{'caught the bug' if result.bound_check_correct else 'MISSED'}"
          f" ({len(result.bound_violations)} out-of-bounds reads)")
    print(f"  invariance checking : "
          f"{'caught the bug' if result.invariance_check_correct else 'MISSED'}"
          f" ({len(result.invariance_violations)} unexpected writes)")


if __name__ == "__main__":
    main()
