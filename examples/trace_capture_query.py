"""Unified tracing walkthrough: capture -> columnar bundle -> query -> Perfetto.

Runs three of the paper's experiments (Figure 2 order probes, the §5.1
stall monitor, the §5.2 watchpoints) publishing into ONE trace hub, seals
everything into a single columnar `.ctb` bundle, then answers questions
over the stored trace — including reproducing the live latency/order
analyses bit-for-bit — and exports a Perfetto-loadable timeline.

Run:  python examples/trace_capture_query.py
"""

from __future__ import annotations

import os
import tempfile

from repro.analysis.latency import render_latency_table, summarize
from repro.analysis.order import classify_order
from repro.experiments import fig2, sec51, sec52
from repro.trace import (
    ColumnarSink,
    ColumnarStore,
    TraceHub,
    TraceQuery,
    latency_samples,
    stored_order_records,
)
from repro.trace.export import to_chrome_json, validate_chrome_events


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-trace-")
    bundle = os.path.join(workdir, "experiments.ctb")

    # 1. One hub, one on-disk bundle, three experiments.
    hub = TraceHub()
    hub.attach(ColumnarSink(bundle, hub.registry))
    print("capturing fig2 + sec51 + sec52 into one trace hub...")
    r_fig2 = fig2.run(n=8, num=12, probe_i=4, trace=hub)
    r_sec51 = sec51.run(rows_a=4, col_a=8, col_b=4, trace=hub)
    sec52.run(trace=hub)
    hub.close()   # seals buffered records into the .ctb file

    store = ColumnarStore.load(bundle)
    print(f"\nbundle {bundle}:")
    print(f"  {len(store.segments)} segments, {store.total_rows()} records, "
          f"schemas: {', '.join(store.schemas())}")

    # 2. Ad-hoc queries over the stored trace.
    spans = TraceQuery(store).schema("run.span").rows()
    print("\nkernel launches (run.span):")
    for span in spans:
        print(f"  {span['kernel']:12s} {span['end'] - span['start']:>8d} cycles")

    per_kernel = (TraceQuery(store).schema("order.record")
                  .aggregate("inner", by="kernel"))
    print("\norder-probe inner-iteration stats by kernel:")
    for kernel, agg in sorted(per_kernel.items()):
        print(f"  {kernel:12s} count={agg.count:4d} mean inner={agg.mean:.2f}")

    # 3. The legacy analyses run unchanged on the stored trace —
    #    bit-for-bit identical to the live results.
    stored_samples = latency_samples(store)
    assert stored_samples == r_sec51.samples
    print("\n" + render_latency_table(summarize(stored_samples),
                                      "data_a load latency (from disk)"))

    for label, live in (("single-task", r_fig2.single_task),
                        ("ndrange", r_fig2.ndrange)):
        records = stored_order_records(store, kernel=label)
        assert records == live.records
        print(f"stored {label:12s} order -> {classify_order(records)}")

    # 4. Perfetto export (validated against the trace-event schema).
    document = to_chrome_json(store)
    import json
    events = json.loads(document)["traceEvents"]
    problems = validate_chrome_events(events)
    assert not problems, problems
    out = os.path.join(workdir, "experiments.trace.json")
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(document)
    print(f"\nPerfetto timeline: {out} ({len(events)} events)")
    print("open https://ui.perfetto.dev and load it to browse the run")


if __name__ == "__main__":
    main()
