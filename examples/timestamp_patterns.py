"""§3.1 walkthrough: the two timestamp patterns and their pitfalls.

Shows both implementations measuring the same event, then reproduces the
paper's two limitations of the persistent-kernel pattern — stale
timestamps when the compiler overrides the channel depth, and bias when
separate free-running counters launch at different cycles — and the HDL
pattern's immunity to both.

Run:  python examples/timestamp_patterns.py
"""

from __future__ import annotations

from repro.experiments import limitations, sec31


def main() -> None:
    print(limitations.run(gap_cycles=40, compiled_depth=16,
                          launch_skew=25).render())

    print()
    result = sec31.run()
    print(result.render())

    print("\n--- per-step pointer-chase latencies seen by each pattern ---")
    hdl_gaps = result.step_latencies(result.hdl)
    opencl_gaps = result.step_latencies(result.opencl)
    print(f"HDL counter   : {hdl_gaps[:8]} ...")
    print(f"OpenCL counter: {opencl_gaps[:8]} ...")
    agreement = sum(1 for a, b in zip(hdl_gaps, opencl_gaps) if a == b)
    print(f"patterns agree on {agreement}/{len(hdl_gaps)} steps")


if __name__ == "__main__":
    main()
