"""Synthesis-model walkthrough: what the instrumentation costs.

Regenerates Table 1 (matrix multiply: base / stall monitor / watchpoint /
both) and prints full fit summaries, plus the same design on all three of
the paper's platforms.

Run:  python examples/synthesis_reports.py
"""

from __future__ import annotations

from repro.experiments import table1
from repro.host.context import Context
from repro.host.device import get_platforms
from repro.host.program import Program
from repro.kernels.matmul import MatMulKernel


def main() -> None:
    result = table1.run()
    print(result.render())

    print("\n--- full fit summary: the SM design ---")
    print(result.reports["sm"].render())

    print("\n--- base matmul across the paper's three platforms (§2) ---")
    for device in get_platforms()[0].devices:
        context = Context(device)
        program = Program(context, [MatMulKernel()], name="matmul_base")
        report = program.synthesis_report()
        util = report.utilization_of(device.model)
        print(f"{device.name:40s} fmax={report.fmax_mhz:6.1f} MHz  "
              f"logic={util['alms']:5.1%}  blocks={report.total.ram_blocks}")


if __name__ == "__main__":
    main()
