"""Setup shim: enables legacy editable installs in offline environments
(where the `wheel` package needed by PEP-660 editable installs is absent).
All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
