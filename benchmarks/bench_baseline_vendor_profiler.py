"""Baseline comparison (§6): the vendor's aggregate profiler vs the ibuffer.

"Altera provides profiling support ... on accumulated bandwidth and
channel stalls. In comparison, our proposed framework provides detailed
insight into synthesized designs and supports smart debugging functions."

This bench runs both on the same instrumented matmul and quantifies the
difference: the aggregate counters agree with the trace's aggregates, but
only the ibuffer yields the latency *distribution*, per-event timestamps,
and event order.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.stall_monitor import StallMonitor
from repro.core.vendor_profiler import VendorProfiler
from repro.kernels.matmul import MatMulKernel, allocate_matmul_buffers
from repro.pipeline.fabric import Fabric


def _run_both():
    fabric = Fabric()
    monitor = StallMonitor(fabric, sites=2, depth=2048)
    profiler = VendorProfiler(fabric)
    kernel = MatMulKernel(stall_monitor=monitor)
    allocate_matmul_buffers(fabric, 8, 16, 8)
    engine = fabric.run_kernel(kernel, {"rows_a": 8, "col_a": 16, "col_b": 8})
    samples = [s.latency for s in monitor.latencies(0, 1)]
    report = profiler.report(engine)
    return samples, report


def test_vendor_baseline_comparison(benchmark):
    samples, report = run_once(benchmark, _run_both)
    print("\n" + report.render())

    def line_of(counter):
        _, _, tail = counter.site.rpartition("@L")
        return int(tail) if tail.isdigit() else 1 << 30

    a_load = min((c for c in report.lsus if c.kind == "load"), key=line_of)

    # Aggregate agreement: both tools measure the same hardware.
    assert a_load.accesses == len(samples)
    assert a_load.mean_latency_cycles == pytest.approx(
        sum(samples) / len(samples), rel=1e-9)
    assert a_load.max_latency_cycles == max(samples)

    # Detail advantage: the trace carries a genuine multi-modal
    # distribution (warm-up fast accesses + steady-state stalls) that the
    # aggregate mean cannot represent.
    distinct = len(set(samples))
    assert distinct > 10                       # rich distribution in the trace
    # The baseline exposes exactly three numbers for this site.
    assert {f for f in ("accesses", "total_latency_cycles",
                        "max_latency_cycles")} <= set(
        a_load.__dataclass_fields__)

    # Bandwidth view exists in the baseline (its actual strength).
    assert report.buffer_bandwidth["data_a"] > 0
    assert report.total_bytes > 0


def test_vendor_profiler_is_cheaper_in_area(benchmark):
    """The honest half of the trade-off: counters cost less than trace
    buffers. Quantified via the synthesis model."""
    from repro.synthesis.cost_model import CostModel

    def measure():
        model = CostModel()
        vendor = model.profile_vector(
            VendorProfiler.resource_profile(lsu_sites=3, channel_count=4))
        fabric = Fabric()
        monitor = StallMonitor(fabric, sites=2, depth=2048)
        ibuffer_vec = model.profile_vector(monitor.resource_profile())
        return vendor, ibuffer_vec

    vendor, ibuffer_vec = run_once(benchmark, measure)
    assert vendor.memory_bits < ibuffer_vec.memory_bits
    assert vendor.alms < ibuffer_vec.alms
