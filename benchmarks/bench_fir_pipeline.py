"""Channel-depth sweep on the streaming FIR pipeline.

The dataflow tuning question every AOCL design faces: how deep must the
inter-kernel channels be before backpressure stops costing cycles? The
sweep locates the knee and checks the monotone shape.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.kernels.fir import expected_fir, run_fir
from repro.pipeline.fabric import Fabric

TAPS = [1, 2, 3, 4, 5, 6, 7, 8]
SIGNAL = np.arange(128)


def _measure(channel_depth: int) -> dict:
    fabric = Fabric(keep_lsu_samples=False)
    filtered = run_fir(fabric, TAPS, SIGNAL, channel_depth=channel_depth,
                       mac_cycles_per_tap=3)
    assert np.array_equal(filtered, expected_fir(TAPS, SIGNAL))
    total = max(engine.stats.finish_cycle for engine in fabric.engines)
    return {
        "cycles": total,
        "write_stalls": fabric.channels.get("fir_raw").stats.write_stall_cycles,
    }


def test_fir_channel_depth_sweep(benchmark):
    def sweep():
        return {depth: _measure(depth) for depth in (1, 2, 4, 16, 64, 256)}

    results = run_once(benchmark, sweep)
    print()
    for depth, row in sorted(results.items()):
        print(f"depth {depth:4d}: {row['cycles']:6d} cycles, "
              f"{row['write_stalls']:6d} producer stall cycles")

    depths = sorted(results)
    stalls = [results[d]["write_stalls"] for d in depths]
    cycles = [results[d]["cycles"] for d in depths]

    # Backpressure falls monotonically with depth (FIFO absorbs skew)...
    assert all(a >= b for a, b in zip(stalls, stalls[1:]))
    # ...the shallowest build stalls heavily, the deepest not at all.
    assert stalls[0] > 0
    assert stalls[-1] == 0
    # End-to-end cycles are dominated by the serial FIR stage, so the
    # runtime moves by far less than the stall count (the stage itself is
    # the wall, not the channel).
    assert max(cycles) - min(cycles) < max(stalls)
