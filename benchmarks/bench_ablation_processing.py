"""Ablation: intelligent processing vs raw recording (the §1 claim).

"our software-centric approach enables intelligent data processing rather
than merely recording the selected signals" — quantified: for a workload
of 2000 events containing 5 rare outliers,

* a raw-recording ibuffer needs DEPTH >= 2000 to guarantee capture;
* a threshold-filter ibuffer captures all 5 with DEPTH = 8;
* a histogram ibuffer characterizes the whole distribution with DEPTH = 16;
* a summary ibuffer needs DEPTH = 1;

and the synthesis model prices the trace-memory saved.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.commands import SamplingMode
from repro.core.host_interface import HostController
from repro.core.ibuffer import IBuffer, IBufferConfig
from repro.core.logic_blocks import RawRecorderLogic
from repro.core.processing import HistogramLogic, SummaryLogic, ThresholdFilterLogic
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import SingleTaskKernel
from repro.synthesis.cost_model import CostModel

EVENTS = 2000
OUTLIER_POSITIONS = (101, 757, 1203, 1544, 1999)


class _Workload(SingleTaskKernel):
    """2000 monitored values: baseline 20, five spikes of 900+index."""

    def __init__(self, ibuffer, **kw):
        super().__init__(**kw)
        self.ibuffer = ibuffer

    def iteration_space(self, args):
        return range(EVENTS)

    def body(self, ctx):
        index = ctx.iteration
        value = 900 + index if index in OUTLIER_POSITIONS else 20
        ctx.write_channel_nb(self.ibuffer.data_c[0], value)
        yield ctx.compute(1)


def _run(logic_factory, depth, mode=SamplingMode.LINEAR):
    fabric = Fabric(keep_lsu_samples=False)
    ibuffer = IBuffer(fabric, "probe", logic_factory=logic_factory,
                      config=IBufferConfig(count=1, depth=depth, mode=mode))
    controller = HostController(fabric, ibuffer)
    fabric.run_kernel(_Workload(ibuffer, name="workload"), {})
    controller.stop()
    return ibuffer, controller.read_trace()


def test_processing_ablation(benchmark):
    def run_all():
        results = {}
        results["raw_small"] = _run(lambda cu: RawRecorderLogic(), 64)
        results["filter"] = _run(lambda cu: ThresholdFilterLogic(100), 8)
        results["histogram"] = _run(lambda cu: HistogramLogic(bin_width=256,
                                                              bins=8), 16)
        results["summary"] = _run(lambda cu: SummaryLogic(), 1)
        return results

    results = run_once(benchmark, run_all)

    # Raw recording with a small buffer misses every outlier (they occur
    # after slot 64 fills) — the linear buffer saturates on baseline noise.
    raw_values = [e["value"] for e in results["raw_small"][1]]
    assert all(value == 20 for value in raw_values)

    # The filter catches all five outliers in an 8-deep buffer.
    filter_values = sorted(e["value"] for e in results["filter"][1])
    assert filter_values == sorted(900 + p for p in OUTLIER_POSITIONS)

    # The histogram characterizes everything: total count preserved.
    hist = {e["bin_low"]: e["count"] for e in results["histogram"][1]}
    assert sum(hist.values()) == EVENTS
    assert hist[0] == EVENTS - len(OUTLIER_POSITIONS)

    # The summary needs one slot and still sees the extremes.
    summary = results["summary"][1][0]
    assert summary["count"] == EVENTS
    assert summary["minimum"] == 20
    assert summary["maximum"] == 900 + OUTLIER_POSITIONS[-1]

    # Area: the smart blocks save trace memory vs a raw buffer big enough
    # to capture the whole run.
    model = CostModel()
    raw_full = IBuffer(Fabric(), "raw_full",
                       logic_factory=lambda cu: RawRecorderLogic(),
                       config=IBufferConfig(count=1, depth=EVENTS))
    raw_bits = model.profile_vector(raw_full.resource_profile()).memory_bits
    filter_bits = model.profile_vector(
        results["filter"][0].resource_profile()).memory_bits
    assert filter_bits < raw_bits / 50
