"""Frontend harness: the paper's listings compiled from source.

Confirms end-to-end that the OpenCL-C reconstruction of Listing 7
reproduces Figure 2(b) through compile -> execute -> decode, and measures
the frontend's compile+run cost (the reproduction's own usability number).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.frontend import compile_source
from repro.frontend.listings import LISTING_7, LISTING_8_DEFINES, LISTING_8_IBUFFER
from repro.pipeline.fabric import Fabric


def _run_listing7(rows: int = 20, num: int = 50):
    fabric = Fabric()
    program = compile_source(fabric, LISTING_7)
    fabric.memory.allocate("X", rows * num).fill(np.arange(rows * num))
    fabric.memory.allocate("Y", num).fill(np.arange(num))
    fabric.memory.allocate("Z", rows)
    for name in ("I1", "I2", "I3"):
        fabric.memory.allocate(name, rows * 10 + 1)
    fabric.run_kernel(program.kernel("matvec"), {
        "__global_size": rows, "x": "X", "y": "Y", "z": "Z",
        "info1": "I1", "info2": "I2", "info3": "I3", "num": num})
    return fabric


def test_listing7_reproduces_fig2b(benchmark):
    fabric = run_once(benchmark, _run_listing7)
    rows, num = 20, 50
    z = fabric.memory.buffer("Z").snapshot()
    expected = (np.arange(rows * num).reshape(rows, num)
                * np.arange(num)).sum(axis=1)
    assert np.array_equal(z, expected)

    info2 = fabric.memory.buffer("I2").snapshot()
    info3 = fabric.memory.buffer("I3").snapshot()
    first_wave = [(int(info2[s]), int(info3[s])) for s in range(1, rows + 1)]
    assert first_wave == [(k, 0) for k in range(rows)]   # Figure 2(b)


def test_listing8_ibuffer_protocol_from_source(benchmark):
    def run():
        fabric = Fabric()
        program = compile_source(fabric, LISTING_8_IBUFFER,
                                 defines=LISTING_8_DEFINES)
        fabric.memory.allocate("OUT", LISTING_8_DEFINES["DEPTH"])
        data_in = program.channel("data_in")
        for value in range(10):
            data_in.write_nb(100 + value)
            fabric.advance(2)
        fabric.run_kernel(program.kernel("read_host"),
                          {"cmd": 2, "output": "OUT"})   # STOP
        fabric.advance(4)
        fabric.run_kernel(program.kernel("read_host"),
                          {"cmd": 3, "output": "OUT"})   # READ
        fabric.advance(4)
        return list(fabric.memory.buffer("OUT").snapshot())

    out = run_once(benchmark, run)
    assert out[:10] == [100 + value for value in range(10)]
