"""Figure 2: execution/scheduling order of Listing 6 vs Listing 7.

Regenerates both sub-figures at the paper's scale (N=50 work-items/rows,
num=100 inner iterations, probing i<10) and prints the paper's row format
for the same window (info_seq[51..54]).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig2


def test_fig2a_single_task(benchmark):
    result = run_once(benchmark, fig2._run_one, "single-task",
                      fig2.PAPER_N, fig2.PAPER_NUM, fig2.PAPER_PROBE_I)
    print("\n" + result.render(start_seq=51))
    # Paper finding: "all iterations in the inner loop are executed first
    # before going to the next iteration of the outer loop, the same as
    # sequential execution."
    assert result.classification == "program-order"
    assert result.access_order[:4] == [0, 1, 2, 3]
    assert result.result_correct


def test_fig2b_ndrange(benchmark):
    result = run_once(benchmark, fig2._run_one, "ndrange",
                      fig2.PAPER_N, fig2.PAPER_NUM, fig2.PAPER_PROBE_I)
    print("\n" + result.render(start_seq=51))
    # Paper finding: "different work-items ... get into the pipeline before
    # they go to the next iteration of the (inner) loop", giving the
    # x[0], x[100], x[200] access pattern.
    assert result.classification == "interleaved"
    assert result.access_order[:4] == [0, 100, 200, 300]
    assert result.result_correct


def test_fig2_cross_kernel_comparison(benchmark):
    result = run_once(benchmark, fig2.run)
    print("\n" + result.render())
    # "Such different memory access patterns contribute to the different
    # execution times of the two kernels."
    assert result.orders_differ
    assert result.runtimes_differ
    # Sequence order must agree with timestamp order in both traces.
    from repro.analysis.order import timestamps_monotonic
    assert timestamps_monotonic(result.single_task.records)
    assert timestamps_monotonic(result.ndrange.records)
