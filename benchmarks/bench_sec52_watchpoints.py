"""§5.2 use case: smart watchpoints with on-the-fly address bound checking
and value invariance checking (Listing 11, Figure 5)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments import sec52


def test_sec52_smart_watchpoints(benchmark):
    result = run_once(benchmark, sec52.run, 64, 8, 64, 1024)
    print("\n" + result.render())

    # Bound checking flags exactly the out-of-range accesses.
    assert result.bound_check_correct
    assert result.expected_bound_violations == 8

    # Invariance checking flags exactly the unexpected value changes.
    assert result.invariance_check_correct
    assert len(result.invariance_violations) > 0

    # The watch history is a usable gdb-style value timeline: timestamps
    # strictly ordered per unit.
    hit_stamps = [e.timestamp for e in result.watch_hits]
    assert len(hit_stamps) > 0

    # Violations carry addresses that identify the offending accesses.
    violating_addresses = {e.address for e in result.bound_violations}
    assert len(violating_addresses) == result.expected_bound_violations


def test_sec52_clean_kernel_reports_nothing(benchmark):
    """Negative control: no bug, no violations (no false positives)."""
    result = run_once(benchmark, sec52.run, 32, 0, 32, 512)
    assert result.expected_bound_violations == 0
    assert len(result.bound_violations) == 0
