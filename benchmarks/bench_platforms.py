"""§2 cross-platform check: "We mainly report the results using the
Stratix V system as other platforms show similar trends."

Runs the Table-1 (matmul base vs SM) and §3.1 (pointer-chase base vs HDL
vs OpenCL counter) comparisons on all three of the paper's platforms and
asserts the trends transfer.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.stall_monitor import StallMonitor
from repro.core.timestamp import HDLTimestampService, PersistentTimestampService
from repro.host.context import Context
from repro.host.device import Device, get_platforms
from repro.host.program import Program
from repro.kernels.matmul import MatMulKernel
from repro.kernels.pointer_chase import PointerChaseKernel


def _matmul_pair(device: Device):
    base_ctx = Context(device)
    base = Program(base_ctx, [MatMulKernel()], "base").synthesis_report()
    sm_ctx = Context(device)
    monitor = StallMonitor(sm_ctx.fabric, sites=2, depth=2048)
    kernel = MatMulKernel(stall_monitor=monitor)
    sm = Program(sm_ctx, [kernel] + monitor.kernels(),
                 "sm").synthesis_report()
    return base, sm


def _pointer_chase_trio(device: Device):
    reports = {}
    for mode in (None, "persistent", "hdl"):
        context = Context(device)
        persistent = hdl = None
        kernels = []
        if mode == "persistent":
            persistent = PersistentTimestampService(context.fabric, sites=2)
            kernels.extend(persistent.kernels)
        elif mode == "hdl":
            hdl = HDLTimestampService(context.fabric, context.hdl_library)
        kernel = PointerChaseKernel(timestamps=mode, persistent=persistent,
                                    hdl=hdl)
        kernels.insert(0, kernel)
        reports[mode or "base"] = Program(
            context, kernels, f"pc_{mode}").synthesis_report()
    return reports


def test_trends_hold_on_all_platforms(benchmark):
    def sweep():
        rows = {}
        for device in get_platforms()[0].devices:
            base, sm = _matmul_pair(device)
            pc = _pointer_chase_trio(device)
            rows[device.name] = {
                "matmul_base_mhz": base.fmax_mhz,
                "matmul_sm_drop_pct": 100 * (base.fmax_mhz - sm.fmax_mhz)
                                      / base.fmax_mhz,
                "sm_logic_below_base": sm.total.alms < base.total.alms,
                "pc_base_mhz": pc["base"].fmax_mhz,
                "pc_hdl_drop_pct": 100 * (pc["base"].fmax_mhz
                                          - pc["hdl"].fmax_mhz)
                                   / pc["base"].fmax_mhz,
                "pc_opencl_drop_pct": 100 * (pc["base"].fmax_mhz
                                             - pc["persistent"].fmax_mhz)
                                      / pc["base"].fmax_mhz,
            }
        return rows

    rows = run_once(benchmark, sweep)
    print()
    for name, row in rows.items():
        print(f"{name:40s} matmul SM drop {row['matmul_sm_drop_pct']:5.1f}%  "
              f"pc HDL drop {row['pc_hdl_drop_pct']:4.2f}%  "
              f"pc OpenCL drop {row['pc_opencl_drop_pct']:4.2f}%")

    for name, row in rows.items():
        # Trend 1: simple high-fmax kernels pay ~20% for instrumentation.
        assert 14.0 <= row["matmul_sm_drop_pct"] <= 27.0, name
        # Trend 2: the baseline-only retiming logic inversion.
        assert row["sm_logic_below_base"], name
        # Trend 3: pointer chase barely cares; HDL < OpenCL overhead.
        assert row["pc_hdl_drop_pct"] < 3.0, name
        assert row["pc_hdl_drop_pct"] < row["pc_opencl_drop_pct"], name

    # And the Arria 10 fabric is faster than Stratix V, integrated slower
    # than discrete — ordering sanity across device models.
    mhz = {name: row["matmul_base_mhz"] for name, row in rows.items()}
    assert mhz["Arria 10 GX 1150"] > mhz["Stratix V GX A7"]
    assert mhz["Arria 10 GX 1150"] > mhz["Arria 10 (Broadwell-EP integrated)"]
