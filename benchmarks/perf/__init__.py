"""Perf-regression suite for the simulation substrate.

Thin runnable face over :mod:`repro.perf`; the committed
``baseline.json`` next to this file is the regression reference. Run it
with ``make bench-perf``, ``repro-fpga bench``, or::

    PYTHONPATH=src python -m benchmarks.perf

See ``docs/PERFORMANCE.md`` for what each benchmark measures and how the
20% regression gate works.
"""
