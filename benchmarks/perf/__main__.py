"""Run the perf suite: ``PYTHONPATH=src python -m benchmarks.perf``."""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
