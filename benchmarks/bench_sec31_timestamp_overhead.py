"""§3.1: area & frequency overhead of the two timestamp patterns on the
pointer-chasing kernel (base 233.3 MHz; OpenCL counters 227.8 MHz; HDL
counter <3% drop and lower logic overhead)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments import sec31
from repro.experiments.sec31 import PAPER_REFERENCE


def test_sec31_overhead(benchmark):
    result = run_once(benchmark, sec31.run)
    print("\n" + result.render())

    # Paper: un-profiled kernel reaches 233.3 MHz.
    assert result.base.fmax_mhz == pytest.approx(
        PAPER_REFERENCE["base_mhz"], abs=3.0)

    # Paper: the OpenCL free-running counters bring it to 227.8 MHz.
    assert result.opencl.fmax_mhz == pytest.approx(
        PAPER_REFERENCE["opencl_mhz"], abs=3.0)

    # Paper: the HDL counter keeps the drop under 3%.
    assert result.freq_drop_pct(result.hdl) < PAPER_REFERENCE["hdl_max_drop_pct"]

    # Paper: "the HDL implementation has lower overhead in register usage
    # and logic unit (1.1% ...) than the persistent kernel approach (1.3%)".
    hdl_logic = result.logic_overhead_pct(result.hdl)
    opencl_logic = result.logic_overhead_pct(result.opencl)
    assert hdl_logic < opencl_logic
    assert 0.0 < hdl_logic < 2.0
    assert 0.0 < opencl_logic < 2.0

    # "the HDL approach is preferred": it also loses less frequency.
    assert result.hdl.fmax_mhz > result.opencl.fmax_mhz


def test_sec31_patterns_agree_dynamically(benchmark):
    """Functional cross-check: both patterns time the serialized pointer
    chase identically (same free-running counter semantics)."""
    result = run_once(benchmark, sec31.run, 128, 64)
    hdl_gaps = result.step_latencies(result.hdl)
    opencl_gaps = result.step_latencies(result.opencl)
    assert len(hdl_gaps) == len(opencl_gaps) == 63
    agreement = sum(1 for a, b in zip(hdl_gaps, opencl_gaps) if a == b)
    assert agreement >= 0.9 * len(hdl_gaps)
    # Pointer chasing cannot pipeline: every step pays real memory latency.
    assert min(hdl_gaps) >= 10
