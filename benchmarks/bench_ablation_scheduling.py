"""Ablation: the NDRange scheduling policy behind Figure 2(b).

The work-item-interleaved issue order is a *compiler scheduling outcome*,
not a law of nature. Flipping the model's NDRange policy to a
hypothetical serial schedule makes the NDRange kernel behave like the
single-task one — order, access pattern, and runtime all follow — which
isolates the paper's Figure 2 finding to exactly that scheduling choice.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.analysis.order import access_pattern, classify_order, order_records
from repro.core.sequence import SequenceService
from repro.core.timestamp import PersistentTimestampService
from repro.kernels.matvec import (
    MatVecNDRange,
    allocate_matvec_buffers,
    expected_matvec,
)
from repro.pipeline.fabric import Fabric

N, NUM, PROBE = 16, 40, 8


def _run_policy(policy: str):
    fabric = Fabric()
    sequence = SequenceService(fabric)
    timestamps = PersistentTimestampService(fabric, sites=1)
    buffers = allocate_matvec_buffers(fabric, N, NUM, probe_i=PROBE)
    kernel = MatVecNDRange(sequence, timestamps, probe_i=PROBE,
                           policy=policy)
    engine = fabric.run_kernel(kernel, {"N": N, "num": NUM})
    assert np.array_equal(buffers["z"].snapshot(), expected_matvec(N, NUM))
    records = order_records(buffers["info1"].snapshot(),
                            buffers["info2"].snapshot(),
                            buffers["info3"].snapshot(),
                            count=N * PROBE)
    return {
        "order": classify_order(records),
        "access": access_pattern(records, NUM, limit=4),
        "cycles": engine.stats.total_cycles,
        "mean_load_latency": fabric.memory.stats.mean_load_latency,
    }


def test_scheduling_policy_ablation(benchmark):
    def sweep():
        return {policy: _run_policy(policy)
                for policy in ("workitem-interleaved", "workitem-serial")}

    results = run_once(benchmark, sweep)
    interleaved = results["workitem-interleaved"]
    serial = results["workitem-serial"]
    print(f"\ninterleaved: {interleaved}")
    print(f"serial     : {serial}")

    # The hardware policy produces Figure 2(b); the serial policy
    # reproduces Figure 2(a)'s order from the *same* kernel.
    assert interleaved["order"] == "interleaved"
    assert serial["order"] == "program-order"
    assert interleaved["access"] == [0, NUM, 2 * NUM, 3 * NUM]
    assert serial["access"] == [0, 1, 2, 3]

    # The paper's claim: "Such different memory access patterns contribute
    # to the different execution times of the two kernels."
    assert interleaved["cycles"] != serial["cycles"]
    assert interleaved["mean_load_latency"] != serial["mean_load_latency"]
