"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's evaluation artifacts
(Figure 2, Table 1, the §3.1/§5.1/§5.2 campaigns) and asserts that the
*shape* of the paper's finding holds — who wins, by roughly what factor.
Run with: ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a whole experiment exactly once per round.

    The experiments are deterministic simulations; multiple iterations per
    round would only re-measure identical work.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
