"""§4 scalability sweep: the ibuffer cost surface over (N, DEPTH)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments import scalability


def test_ibuffer_scalability_surface(benchmark):
    result = run_once(benchmark, scalability.run)
    print("\n" + result.render())

    # "scalable for both the depth of the trace buffer and the number of
    # instances":
    for count in scalability.COUNTS:
        # Storage scales with DEPTH; the clock does not care (block RAM).
        assert result.bits_linear_in_depth(count)
        assert result.fmax_flat_in_depth(count)

    # Logic replicates with N but is independent of DEPTH.
    for depth in scalability.DEPTHS:
        alms = [result.grid[(count, depth)].total.alms
                for count in scalability.COUNTS]
        assert alms == sorted(alms)          # monotone in N
    for count in scalability.COUNTS:
        alms_across_depth = {result.grid[(count, depth)].total.alms
                             for depth in scalability.DEPTHS}
        assert len(alms_across_depth) == 1   # flat in DEPTH

    # Replication's fanout costs a little frequency, monotonically.
    fmax_by_count = [result.grid[(count, 1024)].fmax_mhz
                     for count in scalability.COUNTS]
    assert fmax_by_count == sorted(fmax_by_count, reverse=True)
