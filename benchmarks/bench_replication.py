"""Compute-unit replication scaling (the num_compute_units knob).

Not a paper table, but the mechanism behind the ibuffer's own replication
(§4) and AOCL's standard throughput scaling — the harness quantifies how
far it goes before the memory system becomes the wall.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.kernels.vecadd import VecAddKernel
from repro.memory.global_memory import GlobalMemoryConfig
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import NDRangeKernel, PipelineConfig


class _SlowVecAdd(VecAddKernel):
    """II=4 vecadd: issue-bound per compute unit."""

    def __init__(self, compute_units: int):
        NDRangeKernel.__init__(self, name="vecadd_cu",
                               num_compute_units=compute_units,
                               pipeline=PipelineConfig(ii=4))


def _cycles(compute_units: int, banks: int, n: int = 256) -> int:
    fabric = Fabric(memory_config=GlobalMemoryConfig(
        banks=banks, row_bytes=64, max_outstanding=256),
        keep_lsu_samples=False)
    fabric.memory.allocate("a", n).fill(np.arange(n))
    fabric.memory.allocate("b", n).fill(np.arange(n))
    c = fabric.memory.allocate("c", n)
    engines = fabric.run_replicated(_SlowVecAdd(compute_units), {"n": n})
    assert (c.snapshot() == np.arange(n) * 2).all()
    return max(engine.stats.finish_cycle for engine in engines)


def test_cu_scaling_curve(benchmark):
    def sweep():
        return {
            "parallel_mem": {cu: _cycles(cu, banks=16) for cu in (1, 2, 4, 8)},
            "serial_mem": {cu: _cycles(cu, banks=1) for cu in (1, 4)},
        }

    results = run_once(benchmark, sweep)
    parallel = results["parallel_mem"]
    print("\nCU scaling (parallel memory):",
          {cu: parallel[cu] for cu in sorted(parallel)})
    print("CU scaling (single bank):   ", results["serial_mem"])

    # Monotone improvement while issue-bound...
    assert parallel[2] < parallel[1]
    assert parallel[4] < parallel[2]
    # ...near-ideal early: 2 CUs buy at least 1.4x.
    assert parallel[1] / parallel[2] > 1.4
    # ...with diminishing returns by 8 CUs (memory takes over).
    gain_2 = parallel[1] / parallel[2]
    gain_8 = parallel[4] / parallel[8]
    assert gain_8 < gain_2

    # A single bank caps everything: quad CUs remain far slower than the
    # parallel-memory quad build.
    assert results["serial_mem"][4] > 2 * parallel[4]
