"""Substrate micro-benchmarks: simulator, channels, pipeline throughput.

Not a paper artifact — these quantify the reproduction's own performance
(events/second) and pin the substrate behaviours the experiments rely on
(stall-free instrumentation, pipelining speedup).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ibuffer import IBuffer, IBufferConfig
from repro.core.logic_blocks import RawRecorderLogic
from repro.kernels.vecadd import VecAddKernel
from repro.pipeline.fabric import Fabric
from repro.pipeline.kernel import PipelineConfig, SingleTaskKernel
from repro.sim.core import Simulator


def test_simulator_event_throughput(benchmark):
    """Raw DES throughput: a ping-pong of two processes."""
    def run():
        sim = Simulator()
        def ping():
            for _ in range(10_000):
                yield sim.timeout(1)
        sim.process(ping())
        sim.run()
        return sim.now
    cycles = benchmark(run)
    assert cycles == 10_000


def test_channel_throughput(benchmark):
    """Producer/consumer pair across a FIFO channel."""
    def run():
        sim = Simulator()
        from repro.channels.channel import Channel
        channel = Channel(sim, "c", depth=16)
        def producer():
            for value in range(5_000):
                yield from channel.write(value)
        total = []
        def consumer():
            for _ in range(5_000):
                value = yield from channel.read()
                total.append(value)
        sim.process(producer())
        sim.process(consumer())
        sim.run()
        return len(total)
    assert benchmark(run) == 5_000


def test_pipelined_kernel_throughput(benchmark):
    """End-to-end: a 4096-work-item vecadd through the full memory system."""
    def run():
        fabric = Fabric(keep_lsu_samples=False)
        n = 4096
        fabric.memory.allocate("a", n).fill(np.arange(n))
        fabric.memory.allocate("b", n).fill(np.arange(n))
        fabric.memory.allocate("c", n)
        engine = fabric.run_kernel(VecAddKernel(), {"n": n})
        return engine.stats.total_cycles
    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cycles > 0


def test_instrumentation_is_stall_free(benchmark):
    """The §4 requirement, quantified: adding an ibuffer probe to every
    iteration must not change the kernel's cycle count at all."""
    class Probed(SingleTaskKernel):
        def __init__(self, ibuffer=None, **kw):
            super().__init__(**kw)
            self.ibuffer = ibuffer
        def iteration_space(self, args):
            return range(args["n"])
        def body(self, ctx):
            value = yield ctx.load("src", ctx.iteration)
            if self.ibuffer is not None:
                ctx.write_channel_nb(self.ibuffer.data_c[0], value)
            yield ctx.store("dst", ctx.iteration, value)

    def run_pair():
        results = {}
        for instrumented in (False, True):
            fabric = Fabric(keep_lsu_samples=False)
            n = 512
            fabric.memory.allocate("src", n).fill(np.arange(n))
            fabric.memory.allocate("dst", n)
            ibuffer = None
            if instrumented:
                ibuffer = IBuffer(fabric, "probe",
                                  logic_factory=lambda cu: RawRecorderLogic(),
                                  config=IBufferConfig(count=1, depth=1024))
            engine = fabric.run_kernel(Probed(ibuffer, name="probed"),
                                       {"n": n})
            results[instrumented] = engine.stats.total_cycles
        return results

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert results[True] == results[False]   # zero perturbation
