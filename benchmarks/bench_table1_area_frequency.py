"""Table 1: logic / memory / frequency of matrix multiply under
instrumentation (Base, SM, WP, SM+WP) on the Stratix V model."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments import table1
from repro.experiments.table1 import PAPER_REFERENCE


def test_table1_rows(benchmark):
    result = run_once(benchmark, table1.run)
    print("\n" + result.render())

    base = result.reports["base"]
    sm = result.reports["sm"]

    # Paper: base memory bits 2.97M, 396 RAM blocks (we match closely by
    # construction of the matmul profile + shell).
    assert base.total.memory_bits == pytest.approx(
        PAPER_REFERENCE["base"]["memory_bits"], rel=0.02)
    assert base.total.ram_blocks == pytest.approx(
        PAPER_REFERENCE["base"]["ram_blocks"], abs=8)

    # Paper: "the clock frequency is reduced by 20.5%" with the stall
    # monitor; shape target: 20.5% +/- a few points.
    assert result.freq_drop_pct("sm") == pytest.approx(
        PAPER_REFERENCE["sm"]["freq_drop_pct"], abs=3.0)

    # Paper: "the design with a stall monitor has lower logic utilization
    # than the baseline" (baseline-only retiming).
    assert sm.total.alms < base.total.alms

    # Paper: memory bits grow to ~4.16M with SM (+40%); shape: +25..60%.
    growth = sm.total.memory_bits / base.total.memory_bits
    assert 1.25 <= growth <= 1.60

    # WP and SM+WP "show similar results".
    assert result.freq_drop_pct("wp") == pytest.approx(
        result.freq_drop_pct("sm"), abs=4.0)
    assert result.freq_drop_pct("sm+wp") >= result.freq_drop_pct("sm") - 1.0

    # Blocks increase for every instrumented design, ordered by content.
    assert (base.total.ram_blocks < sm.total.ram_blocks
            <= result.reports["sm+wp"].total.ram_blocks)


def test_table1_depth_scaling(benchmark):
    """Ablation: the trace-buffer DEPTH define controls the memory cost
    (the paper's scalability claim for the ibuffer, §4)."""
    shallow = table1._build("sm_shallow", True, False, depth=256)
    deep = run_once(benchmark, table1._build, "sm_deep", True, False, 4096)
    assert deep.total.memory_bits > shallow.total.memory_bits
    # fmax is unaffected by depth in this model (block RAM, not logic).
    assert deep.fmax_mhz == pytest.approx(shallow.fmax_mhz, rel=0.01)
