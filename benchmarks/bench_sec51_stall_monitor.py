"""§5.1 use case: measuring load latency / pipeline stalls with the
stall monitor on matrix multiply (Listing 9, Figure 4)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.latency import stall_attribution
from repro.core.commands import SamplingMode
from repro.experiments import sec51


def test_sec51_stall_monitor(benchmark):
    result = run_once(benchmark, sec51.run, 8, 16, 8, 2048)
    print("\n" + result.render())

    # Instrumentation must not perturb the computation (§4's requirement).
    assert result.result_correct

    # The monitor's reconstruction equals the LSU's ground truth exactly —
    # this is the strongest statement the simulator substrate enables.
    assert result.matches_ground_truth

    # The whole point: stalls are visible in the trace.
    assert result.observed_stalls
    stall_cycles, stalled_fraction = stall_attribution(
        result.samples, result.unloaded_latency)
    assert stall_cycles > 0
    assert stalled_fraction > 0.5  # matmul's a-load is mostly stalled

    # "an execution window determined by the trace buffer depth".
    assert len(result.samples) <= 2048


def test_sec51_cyclic_flight_recorder(benchmark):
    """Cyclic mode: the window covers the *end* of execution."""
    result = run_once(benchmark, sec51.run, 8, 16, 8, 64,
                      SamplingMode.CYCLIC)
    assert len(result.samples) == 64
    # Flight-recorder property: the retained samples are the newest; the
    # ground-truth suffix must match.
    measured = [s.latency for s in result.samples]
    assert measured == result.ground_truth[-64:]
