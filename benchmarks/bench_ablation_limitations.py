"""Ablation: the §3.1 limitations of the persistent-kernel timestamp,
and the HDL pattern's immunity (the paper's stated reason to prefer it)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments import limitations


def test_limitations_ablation(benchmark):
    result = run_once(benchmark, limitations.run, 40, 16, 25)
    print("\n" + result.render())

    # Healthy persistent pattern measures the true latency.
    assert result.healthy_measured == pytest.approx(40, abs=1)

    # Limitation 1: compiler-overridden depth -> stale timestamps. The
    # FIFO hands out counter values from the launch window, destroying the
    # measurement entirely.
    assert result.stale_measured < result.gap_cycles / 2

    # Limitation 2: launch skew between separate counters biases the
    # difference by exactly the skew.
    assert result.skew_error == pytest.approx(-25, abs=1)

    # The HDL counter has neither failure mode.
    assert result.hdl_measured == 40


def test_limitation_bias_scales_with_skew(benchmark):
    """The measurement error tracks the skew linearly — diagnosable."""
    def sweep():
        return [limitations.run(gap_cycles=50, launch_skew=skew).skew_error
                for skew in (5, 10, 20)]
    errors = run_once(benchmark, sweep)
    assert errors == pytest.approx([-5, -10, -20], abs=1)
